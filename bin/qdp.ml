(* qdp — command-line driver for the dQMA protocols.

   Examples:
     qdp eq    -n 64 -r 8 -x 1010... -y 1010...
     qdp eq    -n 64 -r 8 --random --seed 3
     qdp gt    -n 32 -r 6 --random
     qdp eqt   -n 32 --topology star -t 5 --random
     qdp rv    -n 16 -t 4 -i 2 -j 1
     qdp relay -n 512 -r 64 --random
     qdp dqcma -n 32 -r 6 --random *)

open Cmdliner
open Qdp_codes
open Qdp_network
open Qdp_core

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.Src.set_level Qdp_log.src (if verbose then Some Logs.Debug else None)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace the attack searches.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable observability and write a JSON metrics snapshot (counters, \
           gauges, histograms) to $(docv) on exit.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable observability and write the span trace (one JSON object per \
           line) to $(docv) on exit.")

(* Run [f] under a root span named after the subcommand; when --metrics
   or --trace was given, enable observability first and dump the
   requested outputs afterwards (also on exceptions). *)
let with_obs ~cmd metrics trace f =
  if metrics <> None || trace <> None then Qdp_obs.set_enabled true;
  (* A dump failure (bad path, full disk) should not mask a completed
     run with a [Finally_raised] backtrace. *)
  let dump what f file =
    try f file
    with Sys_error msg -> Printf.eprintf "qdp: cannot write %s: %s\n" what msg
  in
  let finish () =
    Option.iter
      (dump "metrics" @@ fun file ->
       Qdp_obs.Metrics.write_json file (Qdp_obs.Metrics.snapshot ()))
      metrics;
    Option.iter (dump "trace" Qdp_obs.Trace.write_jsonl) trace
  in
  Fun.protect ~finally:finish (fun () ->
      Qdp_obs.Trace.with_span ("qdp." ^ cmd) f)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(value & opt int 32 & info [ "n"; "bits" ] ~docv:"N" ~doc:"Input length in bits.")

let r_arg =
  Arg.(value & opt int 6 & info [ "r"; "length" ] ~docv:"R" ~doc:"Path length / radius.")

let t_arg =
  Arg.(value & opt int 4 & info [ "t"; "terminals" ] ~docv:"T" ~doc:"Number of terminals.")

let reps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k"; "repetitions" ] ~docv:"K"
        ~doc:"Parallel repetitions (default: the paper's O(r^2) choice).")

let random_arg =
  Arg.(
    value & flag
    & info [ "random" ] ~doc:"Draw random inputs instead of --x/--y.")

let x_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "x"; "left" ] ~docv:"BITS" ~doc:"First input as a 0/1 string.")

let y_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "y"; "right" ] ~docv:"BITS" ~doc:"Second input as a 0/1 string.")

let topology_arg =
  Arg.(
    value
    & opt (enum [ ("star", `Star); ("path", `Path); ("cycle", `Cycle); ("grid", `Grid) ]) `Star
    & info [ "topology" ] ~docv:"TOPO" ~doc:"Network topology: star, path, cycle or grid.")

let resolve_pair ~seed ~n ~random x y =
  let st = Random.State.make [| seed; 1 |] in
  match (random, x, y) with
  | true, _, _ -> (Gf2.random st n, Gf2.random st n)
  | false, Some xs, Some ys ->
      let x = Gf2.of_string xs and y = Gf2.of_string ys in
      if Gf2.length x <> n || Gf2.length y <> n then
        failwith "inputs must have exactly --n bits";
      (x, y)
  | _ -> failwith "provide --x and --y, or pass --random"

let report_outcome ~costs ~completeness ~attack ~attack_name =
  Format.printf "costs: %a@." Report.pp_costs costs;
  Format.printf "honest acceptance:   %.6f@." completeness;
  Format.printf "best attack (%s): %.6g@." attack_name attack;
  Format.printf "verdict: %s@."
    (if attack < 1. /. 3. then "sound (< 1/3)" else "soundness not yet amplified")

let eq_cmd =
  let run verbose seed n r reps random x y metrics trace =
    setup_logs verbose;
    with_obs ~cmd:"eq" metrics trace @@ fun () ->
    let x, y = resolve_pair ~seed ~n ~random x y in
    let params = Eq_path.make ?repetitions:reps ~seed ~n ~r () in
    Format.printf "EQ on a path: n=%d r=%d k=%d; EQ(x,y) = %b@." n r
      params.Eq_path.repetitions (Gf2.equal x y);
    let completeness = Eq_path.accept params x (Gf2.copy x) Eq_path.Honest in
    let single, name = Eq_path.best_attack_accept params x y in
    report_outcome ~costs:(Eq_path.costs params) ~completeness
      ~attack:(Sim.repeat_accept params.Eq_path.repetitions single)
      ~attack_name:name
  in
  Cmd.v (Cmd.info "eq" ~doc:"EQ on a path (Algorithm 3/4).")
    Term.(const run $ verbose_arg $ seed_arg $ n_arg $ r_arg $ reps_arg $ random_arg $ x_arg $ y_arg $ metrics_arg $ trace_arg)

let gt_cmd =
  let run verbose seed n r reps random x y metrics trace =
    setup_logs verbose;
    with_obs ~cmd:"gt" metrics trace @@ fun () ->
    let x, y = resolve_pair ~seed ~n ~random x y in
    let params = Gt.make ?repetitions:reps ~seed ~n ~r () in
    let is_gt = Gf2.compare_big_endian x y > 0 in
    Format.printf "GT on a path: n=%d r=%d k=%d; GT(x,y) = %b@." n r
      params.Gt.repetitions is_gt;
    let completeness =
      if is_gt then Gt.accept params x y (Gt.honest_prover x y) else 1.0
    in
    let no_x, no_y = if is_gt then (y, x) else (x, y) in
    let single, name = Gt.best_attack_accept params no_x no_y in
    report_outcome ~costs:(Gt.costs params) ~completeness
      ~attack:(Sim.repeat_accept params.Gt.repetitions single)
      ~attack_name:name
  in
  Cmd.v (Cmd.info "gt" ~doc:"Greater-than on a path (Algorithm 7).")
    Term.(const run $ verbose_arg $ seed_arg $ n_arg $ r_arg $ reps_arg $ random_arg $ x_arg $ y_arg $ metrics_arg $ trace_arg)

let topology_graph topo t =
  match topo with
  | `Star -> (Graph.star t, List.init t (fun i -> i + 1))
  | `Path -> (Graph.path (2 * t), List.init t (fun i -> 2 * i))
  | `Cycle -> (Graph.cycle (2 * t), List.init t (fun i -> 2 * i))
  | `Grid ->
      let g = Graph.grid ~w:t ~h:2 in
      (g, List.init t (fun i -> i))

let eqt_cmd =
  let run seed n t reps random topo metrics trace =
    with_obs ~cmd:"eqt" metrics trace @@ fun () ->
    let g, terminals = topology_graph topo t in
    let r = Graph.radius g in
    let st = Random.State.make [| seed; 2 |] in
    let x = Gf2.random st n in
    let params = Eq_tree.make ?repetitions:reps ~seed ~n ~r:(max 1 r) () in
    let inputs = Array.make t (Gf2.copy x) in
    let completeness = Eq_tree.accept params g ~terminals ~inputs Eq_tree.Honest in
    let bad = Array.copy inputs in
    bad.(t - 1) <- (if random then Gf2.random st n else Gf2.xor x (Gf2.random_weight st n 1));
    let single, name = Eq_tree.best_attack_accept params g ~terminals ~inputs:bad in
    let tr = Eq_tree.tree_of g ~terminals in
    Format.printf "EQ^t (Theorem 19): n=%d t=%d radius=%d tree height=%d k=%d@."
      n t r (Spanning_tree.height tr) params.Eq_tree.repetitions;
    report_outcome ~costs:(Eq_tree.costs params tr) ~completeness
      ~attack:(Sim.repeat_accept params.Eq_tree.repetitions single)
      ~attack_name:name
  in
  Cmd.v (Cmd.info "eqt" ~doc:"EQ with t terminals on a network (Algorithm 5).")
    Term.(const run $ seed_arg $ n_arg $ t_arg $ reps_arg $ random_arg $ topology_arg $ metrics_arg $ trace_arg)

let rv_cmd =
  let i_arg =
    Arg.(value & opt int 0 & info [ "i"; "target" ] ~docv:"I" ~doc:"Terminal to rank (0-based).")
  in
  let j_arg =
    Arg.(value & opt int 1 & info [ "j"; "rank" ] ~docv:"J" ~doc:"Claimed rank (1 = largest).")
  in
  let run seed n t reps i j topo metrics trace =
    with_obs ~cmd:"rv" metrics trace @@ fun () ->
    let g, terminals = topology_graph topo t in
    let st = Random.State.make [| seed; 3 |] in
    let inputs = Array.init t (fun _ -> Gf2.random st n) in
    let params = Rv.make ?repetitions:reps ~seed ~n ~r:(max 1 (Graph.radius g)) () in
    let truth = Rv.rv_value ~inputs ~i ~j in
    Format.printf "RV^{%d,%d} (Theorem 29): n=%d t=%d; truth = %b@." i j n t truth;
    Array.iteri
      (fun k v -> Format.printf "  terminal %d holds %d@." k (Gf2.to_int (Gf2.prefix v (min 30 n))))
      inputs;
    let honest = Rv.honest_accept params g ~terminals ~inputs ~i ~j in
    let attack, name = Rv.best_attack_accept params g ~terminals ~inputs ~i ~j in
    let tr = Spanning_tree.build_rooted_at g ~terminals ~root_terminal:i in
    report_outcome ~costs:(Rv.costs params tr ~t) ~completeness:honest ~attack
      ~attack_name:name
  in
  Cmd.v (Cmd.info "rv" ~doc:"Ranking verification (Algorithm 8).")
    Term.(const run $ seed_arg $ n_arg $ t_arg $ reps_arg $ i_arg $ j_arg $ topology_arg $ metrics_arg $ trace_arg)

let relay_cmd =
  let run seed n r random x y metrics trace =
    with_obs ~cmd:"relay" metrics trace @@ fun () ->
    let x, y = resolve_pair ~seed ~n ~random x y in
    let params = Relay.make ~seed ~n ~r () in
    Format.printf "EQ with relay points (Theorem 22): n=%d r=%d spacing=%d k'=%d@."
      n r params.Relay.spacing params.Relay.inner_repetitions;
    let completeness = Relay.accept params x (Gf2.copy x) (Relay.honest_prover params x) in
    let attack, name = Relay.best_attack_accept params x y in
    report_outcome ~costs:(Relay.costs params) ~completeness ~attack
      ~attack_name:name
  in
  Cmd.v (Cmd.info "relay" ~doc:"EQ with relay points on long paths (Algorithm 6).")
    Term.(const run $ seed_arg $ n_arg $ r_arg $ random_arg $ x_arg $ y_arg $ metrics_arg $ trace_arg)

let dqcma_cmd =
  let run seed n r reps random x y metrics trace =
    with_obs ~cmd:"dqcma" metrics trace @@ fun () ->
    let x, y = resolve_pair ~seed ~n ~random x y in
    let params = Variants.make ?repetitions:reps ~seed ~n ~r () in
    Format.printf "dQCMA EQ (classical proofs): n=%d r=%d k=%d@." n r
      params.Variants.repetitions;
    let completeness = Variants.accept params x (Gf2.copy x) Variants.Honest_strings in
    let single, name = Variants.best_attack_accept params x y in
    report_outcome ~costs:(Variants.costs params) ~completeness
      ~attack:(Sim.repeat_accept params.Variants.repetitions single)
      ~attack_name:name
  in
  Cmd.v (Cmd.info "dqcma" ~doc:"The dQCMA variant: classical proofs, quantum messages.")
    Term.(const run $ seed_arg $ n_arg $ r_arg $ reps_arg $ random_arg $ x_arg $ y_arg $ metrics_arg $ trace_arg)

let seteq_cmd =
  let k_arg =
    Arg.(value & opt int 4 & info [ "elements" ] ~docv:"K" ~doc:"Elements per set.")
  in
  let run seed n r k_set metrics trace =
    with_obs ~cmd:"seteq" metrics trace @@ fun () ->
    let st = Random.State.make [| seed; 5 |] in
    let params = Set_eq.make ~seed ~n ~k:k_set ~r () in
    let s = Array.init k_set (fun _ -> Gf2.random st n) in
    let permuted = Array.init k_set (fun i -> Gf2.copy s.((i + 1) mod k_set)) in
    Format.printf "Set Equality: %d elements of %d bits, r=%d, k=%d reps@."
      k_set n r params.Set_eq.repetitions;
    let completeness = Set_eq.accept params s permuted Sim.All_left in
    let t = Array.init k_set (fun _ -> Gf2.random st n) in
    let single, name = Set_eq.best_attack_accept params s t in
    report_outcome ~costs:(Set_eq.costs params) ~completeness
      ~attack:(Sim.repeat_accept params.Set_eq.repetitions single)
      ~attack_name:name
  in
  Cmd.v (Cmd.info "seteq" ~doc:"Set Equality via set fingerprints (Section 1.4).")
    Term.(const run $ seed_arg $ n_arg $ r_arg $ k_arg $ metrics_arg $ trace_arg)

let ham_cmd =
  let d_arg =
    Arg.(value & opt int 2 & info [ "d"; "distance" ] ~docv:"D"
           ~doc:"Hamming tolerance.")
  in
  let run seed n t d topo metrics trace =
    with_obs ~cmd:"ham" metrics trace @@ fun () ->
    let g, terminals = topology_graph topo t in
    let r = max 1 (Graph.radius g) in
    let proto = Qdp_commcc.Oneway.ham ~seed ~n ~d in
    let params =
      Oneway_compiler.make ~repetitions:(42 * r * r) ~amplification:2 ~r ~t ~n ()
    in
    let st = Random.State.make [| seed; 4 |] in
    let x = Gf2.random st n in
    let inputs =
      Array.init t (fun i ->
          if i = 0 then Gf2.copy x
          else Gf2.xor x (Gf2.random_weight st n (min d (max 1 (d / 2)))))
    in
    Format.printf
      "forall_t HAM<=%d (Theorem 30): n=%d t=%d r=%d; one-way cost %d qubits        (LZ13 formula %d)@."
      d n t r proto.Qdp_commcc.Oneway.message_qubits
      (Qdp_commcc.Oneway.lz13_cost ~n ~d);
    let completeness =
      Oneway_compiler.accept params proto g ~terminals ~inputs
        Oneway_compiler.Honest
    in
    let bad = Array.copy inputs in
    bad.(t - 1) <- Gf2.xor x (Gf2.random_weight st n (min n (8 * d)));
    let single, name =
      Oneway_compiler.best_attack_accept params proto g ~terminals ~inputs:bad
    in
    report_outcome
      ~costs:(Oneway_compiler.costs params proto g ~terminals)
      ~completeness
      ~attack:(Sim.repeat_accept params.Oneway_compiler.repetitions single)
      ~attack_name:name
  in
  Cmd.v
    (Cmd.info "ham" ~doc:"Hamming-tolerance consistency via Theorem 30's compiler.")
    Term.(const run $ seed_arg $ n_arg $ t_arg $ d_arg $ topology_arg $ metrics_arg $ trace_arg)

let check_cmd =
  let run seed metrics trace =
    with_obs ~cmd:"check" metrics trace @@ fun () ->
    let suite = Dqma.demo_suite ~seed in
    let failures = ref 0 in
    List.iter
      (fun packed ->
        let name, e = Dqma.evaluate_packed packed in
        Format.printf "%a@." Dqma.pp_evaluation (name, e);
        if not e.Dqma.meets_spec then incr failures)
      suite;
    Format.printf "%d pairs evaluated, %d spec violations@." (List.length suite)
      !failures;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the conformance suite over every protocol.")
    Term.(const run $ seed_arg $ metrics_arg $ trace_arg)

let main =
  Cmd.group
    (Cmd.info "qdp" ~version:"1.0.0"
       ~doc:"Distributed quantum Merlin-Arthur protocols (Hasegawa-Kundu-Nishimura, PODC 2024).")
    [ eq_cmd; gt_cmd; eqt_cmd; rv_cmd; relay_cmd; dqcma_cmd; seteq_cmd; ham_cmd; check_cmd ]

let () = exit (Cmd.eval main)
