(* Regenerates the paper's Tables 1-3 (and the auxiliary
   figures/sweeps) with measured columns from the implemented
   protocols.  See DESIGN.md for the per-experiment index and
   EXPERIMENTS.md for recorded paper-vs-measured results.

   Usage: tables [t1|t2|t3|soundness|tree|ablation|variants|entangled|turns|all] *)

open Qdp_codes
open Qdp_network
open Qdp_commcc
open Qdp_core

let fmt = Format.std_formatter
let section title = Format.fprintf fmt "@\n=== %s ===@\n@\n" title

let log2f x = Float.log x /. Float.log 2.

let distinct_pair st n =
  let x = Gf2.random st n in
  let rec other () =
    let y = Gf2.random st n in
    if Gf2.equal x y then other () else y
  in
  (x, other ())

(* Measured soundness error: best single-round attack amplified by the
   protocol's repetition count. *)
let amplified k single = Sim.repeat_accept k single

(* ------------------------------------------------------------------ *)
(* Table 1: the FGNP21 baselines                                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 -- FGNP21 baselines (reproduced by this library)";
  Report.pp_header fmt ();
  let st = Random.State.make [| 101 |] in
  (* Row 1: EQ^t with the random-child SWAP test (FGNP21), proof
     O(t r^2 log n).  The degraded per-round soundness is compensated
     by ~t x more repetitions; we charge t * k. *)
  let n = 32 in
  List.iter
    (fun t ->
      let g = Graph.star t in
      let terminals = List.init t (fun i -> i + 1) in
      let r = 2 in
      let k = t * Eq_path.paper_repetitions ~r in
      let p =
        Eq_tree.make ~repetitions:k ~use_permutation_test:false ~seed:11 ~n ~r ()
      in
      let x = Gf2.random st n in
      let inputs = Array.make t (Gf2.copy x) in
      let completeness =
        Eq_tree.accept p g ~terminals ~inputs Eq_tree.Honest
      in
      let bad = Array.copy inputs in
      bad.(t - 1) <- snd (distinct_pair st n);
      let single, _ = Eq_tree.best_attack_accept p g ~terminals ~inputs:bad in
      let tr = Eq_tree.tree_of g ~terminals in
      Report.pp_row fmt
        {
          Report.label = "FGNP21 EQ^t (swap)";
          params = Printf.sprintf "n=%d t=%d r=%d k=%d" n t r k;
          costs = Eq_tree.costs p tr;
          completeness;
          soundness_error = amplified k single;
          paper_formula = "O(t r^2 log n)";
          paper_value = float_of_int (t * r * r) *. log2f (float_of_int n);
        })
    [ 3; 4; 5 ];
  (* Row 2: f with a one-way protocol, 2 terminals on a path. *)
  let n = 48 and d = 2 and r = 4 in
  let proto = Oneway.ham ~seed:12 ~n ~d in
  let params =
    Oneway_compiler.make ~repetitions:(42 * r * r) ~amplification:2 ~r ~t:2 ~n ()
  in
  let g = Graph.path r in
  let terminals = [ 0; r ] in
  let x = Gf2.random st n in
  let close = Gf2.xor x (Gf2.random_weight st n d) in
  let completeness =
    Oneway_compiler.single_accept params proto g ~terminals
      ~inputs:[| Gf2.copy x; close |] Oneway_compiler.Honest
  in
  let far = Gf2.xor x (Gf2.random_weight st n (8 * d)) in
  let single, _ =
    Oneway_compiler.best_attack_accept params proto g ~terminals
      ~inputs:[| Gf2.copy x; far |]
  in
  Report.pp_row fmt
    {
      Report.label = "FGNP21 f via BQP1(f)";
      params = Printf.sprintf "HAM<=%d n=%d r=%d" d n r;
      costs = Oneway_compiler.costs params proto g ~terminals;
      completeness;
      soundness_error = amplified params.Oneway_compiler.repetitions single;
      paper_formula = "O(r^2 BQP1 log(n+r))";
      paper_value =
        float_of_int (r * r * Oneway.lz13_cost ~n ~d) *. log2f (float_of_int (n + r));
    };
  (* Row 3: the classical Omega(n / nu) lower bound as an attack. *)
  Format.fprintf fmt
    "@\nClassical dMA lower bound (Lemma 23 splice attack, r = 6):@\n";
  List.iter
    (fun c ->
      let nn = 16 in
      let proto = Lower_bounds.truncation_protocol ~n:nn ~r:6 ~c in
      match Lower_bounds.fooling_splice proto ~n:nn ~limit:(1 lsl nn) with
      | Some s when Lower_bounds.splice_breaks_soundness proto s ->
          Format.fprintf fmt
            "  c = %2d bits/node < n = %d: SPLICE FOUND -- soundness error 1 \
             (accepts %s vs %s)@\n"
            c nn
            (Gf2.to_string s.Lower_bounds.splice_x)
            (Gf2.to_string s.Lower_bounds.splice_y)
      | Some _ -> Format.fprintf fmt "  c = %2d: collision but checks held@\n" c
      | None ->
          Format.fprintf fmt
            "  c = %2d bits/node = n: no fooling splice exists (protocol sound)@\n"
            c)
    [ 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* Table 2: this paper's upper bounds                                  *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2 -- this paper's protocols";
  Report.pp_header fmt ();
  let st = Random.State.make [| 202 |] in
  (* Row 1: EQ^t with the permutation test (Theorem 19). *)
  List.iter
    (fun (n, t, r) ->
      let g =
        if t = 2 then Graph.path (2 * r)
        else Graph.balanced_tree ~arity:2 ~depth:r
      in
      let terminals =
        if t = 2 then [ 0; 2 * r ]
        else
          (* t leaves of the balanced tree *)
          let size = Graph.size g in
          List.init t (fun i -> size - 1 - i)
      in
      let k = Eq_path.paper_repetitions ~r:(2 * r) in
      let p = Eq_tree.make ~repetitions:k ~seed:21 ~n ~r:(2 * r) () in
      let x = Gf2.random st n in
      let inputs = Array.make t (Gf2.copy x) in
      let completeness = Eq_tree.accept p g ~terminals ~inputs Eq_tree.Honest in
      let bad = Array.copy inputs in
      bad.(t - 1) <- snd (distinct_pair st n);
      let single, _ = Eq_tree.best_attack_accept p g ~terminals ~inputs:bad in
      let tr = Eq_tree.tree_of g ~terminals in
      Report.pp_row fmt
        {
          Report.label = "EQ^t permutation (Thm 19)";
          params = Printf.sprintf "n=%d t=%d height=%d" n t (Spanning_tree.height tr);
          costs = Eq_tree.costs p tr;
          completeness;
          soundness_error = amplified k single;
          paper_formula = "O(r^2 log n)";
          paper_value = float_of_int (4 * r * r) *. log2f (float_of_int n);
        })
    [ (32, 2, 2); (32, 4, 2); (64, 4, 3); (64, 6, 3) ];
  (* Row 2: relay points (Theorem 22) -- total proof size. *)
  List.iter
    (fun (n, r) ->
      let p = Relay.make ~seed:22 ~n ~r () in
      let x = Gf2.random st n in
      let completeness = Relay.accept p x (Gf2.copy x) (Relay.honest_prover p x) in
      let x', y' = distinct_pair st n in
      let soundness_error, _ = Relay.best_attack_accept p x' y' in
      Report.pp_row fmt
        {
          Report.label = "EQ relay (Thm 22)";
          params = Printf.sprintf "n=%d r=%d s=%d" n r p.Relay.spacing;
          costs = Relay.costs p;
          completeness;
          soundness_error;
          paper_formula = "total O~(r n^{2/3})";
          paper_value = Relay.total_proof_paper_bound p;
        })
    [ (64, 16); (256, 16); (1024, 16) ];
  (* Row 4: GT (Theorem 26). *)
  List.iter
    (fun (n, r) ->
      let k = Eq_path.paper_repetitions ~r in
      let p = Gt.make ~repetitions:k ~seed:24 ~n ~r () in
      let a = Gf2.random st n and b = Gf2.random st n in
      let x, y =
        if Gf2.compare_big_endian a b >= 0 then (a, b) else (b, a)
      in
      let completeness =
        if Gf2.equal x y then 1.0 else Gt.accept p x y (Gt.honest_prover x y)
      in
      let single, _ = Gt.best_attack_accept p y x in
      Report.pp_row fmt
        {
          Report.label = "GT (Thm 26)";
          params = Printf.sprintf "n=%d r=%d k=%d" n r k;
          costs = Gt.costs p;
          completeness;
          soundness_error = amplified k single;
          paper_formula = "O(r^2 log n)";
          paper_value = float_of_int (r * r) *. log2f (float_of_int n);
        })
    [ (32, 4); (32, 8); (128, 4) ];
  (* Row 5: RV (Theorem 29). *)
  List.iter
    (fun t ->
      let n = 16 and r = 2 in
      let g = Graph.star t in
      let terminals = List.init t (fun i -> i + 1) in
      let k = Eq_path.paper_repetitions ~r in
      let p = Rv.make ~repetitions:k ~seed:25 ~n ~r () in
      let inputs =
        Array.init t (fun i -> Gf2.of_int ~width:n ((i * 37) + 5))
      in
      (* terminal t-1 holds the largest input *)
      let completeness =
        Rv.honest_accept p g ~terminals ~inputs ~i:(t - 1) ~j:1
      in
      let single, _ =
        (* claim the smallest input is the largest *)
        Rv.best_attack_accept p g ~terminals ~inputs ~i:0 ~j:1
      in
      let tr = Spanning_tree.build_rooted_at g ~terminals ~root_terminal:0 in
      Report.pp_row fmt
        {
          Report.label = "RV (Thm 29)";
          params = Printf.sprintf "n=%d t=%d r=%d" n t r;
          costs = Rv.costs p tr ~t;
          completeness;
          soundness_error = single;
          paper_formula = "O(t r^2 log n)";
          paper_value = float_of_int (t * r * r) *. log2f (float_of_int n);
        })
    [ 3; 5 ];
  (* Row 6: forall_t HAM (Theorem 30/32). *)
  List.iter
    (fun t ->
      let n = 48 and d = 2 and r = 2 in
      let proto = Oneway.ham ~seed:26 ~n ~d in
      let params =
        Oneway_compiler.make ~repetitions:(42 * r * r) ~amplification:2 ~r ~t ~n ()
      in
      let g = Graph.star t in
      let terminals = List.init t (fun i -> i + 1) in
      let x = Gf2.random st n in
      let inputs =
        Array.init t (fun i ->
            if i = 0 then Gf2.copy x else Gf2.xor x (Gf2.random_weight st n 1))
      in
      let completeness =
        Oneway_compiler.single_accept params proto g ~terminals ~inputs
          Oneway_compiler.Honest
      in
      let bad = Array.copy inputs in
      bad.(t - 1) <- Gf2.xor x (Gf2.random_weight st n (8 * d));
      let single, _ =
        Oneway_compiler.best_attack_accept params proto g ~terminals ~inputs:bad
      in
      Report.pp_row fmt
        {
          Report.label = "forall_t HAM (Thm 30)";
          params = Printf.sprintf "n=%d d=%d t=%d r=%d" n d t r;
          costs = Oneway_compiler.costs params proto g ~terminals;
          completeness;
          soundness_error = amplified params.Oneway_compiler.repetitions single;
          paper_formula = "O(t^2 r^2 s log(n+t+r))";
          paper_value =
            Oneway_compiler.paper_local_bound ~t ~r ~s:(Oneway.lz13_cost ~n ~d) ~n;
        })
    [ 3; 4 ];
  (* Row 7: f with a QMA communication protocol, via LSD (Thm 42 / Prop 47). *)
  let ambient = 128 and r = 4 in
  let params = Qmacc_compiler.make ~repetitions:(Eq_path.paper_repetitions ~r) ~r () in
  let close = Lsd.random_close st ~ambient ~dim:2 in
  let far = Lsd.random_far st ~ambient:256 ~dim:2 in
  let honest_close, _ = Qmacc_compiler.run_lsd_pipeline params ~ambient ~inst:close in
  let _, best_far =
    Qmacc_compiler.run_lsd_pipeline params ~ambient:256 ~inst:far
  in
  let proto = Qma_comm.lsd_oneway ~ambient in
  Report.pp_row fmt
    {
      Report.label = "LSD via Thm 42";
      params = Printf.sprintf "m=%d r=%d" ambient r;
      costs = Qmacc_compiler.costs params proto;
      completeness = honest_close;
      soundness_error = best_far;
      paper_formula = "O(r^2 QMAcc^2 polylog)";
      paper_value =
        float_of_int (r * r) *. Float.pow (float_of_int (Qma_comm.cost proto)) 2.;
    };
  (* Row 8: Theorem 46 -- simulate a dQMA protocol by a dQMA^sep one. *)
  Format.fprintf fmt
    "@\nTheorem 46 pipeline (dQMA -> QMA* -> QMA -> LSD -> dQMA^sep):@\n";
  let n = 32 and r = 4 in
  let k = 2 in
  let eq = Eq_path.make ~repetitions:k ~seed:27 ~n ~r () in
  let ec = Eq_path.costs eq in
  let pc =
    Qma_star_reduction.uniform ~r ~intermediate_proof:(ec.Report.local_proof_qubits)
      ~end_proof:0 ~edge_message:ec.Report.local_message_qubits
  in
  let cut, star = Qma_star_reduction.best_cut pc in
  let c =
    Qmacc_compiler.pipeline_c ~total_proof:ec.Report.total_proof_qubits
      ~min_edge_message:ec.Report.local_message_qubits
  in
  Format.fprintf fmt
    "  source dQMA (EQ, n=%d, r=%d, k=%d): total proof %d, min edge msg %d -> C = %d@\n"
    n r k ec.Report.total_proof_qubits ec.Report.local_message_qubits c;
  Format.fprintf fmt
    "  Algorithm 11 cut at edge %d: QMA* = (gamma1=%d, gamma2=%d, mu=%d), total %d; QMA <= %d@\n"
    cut star.Qma_comm.proof_alice star.Qma_comm.proof_bob
    star.Qma_comm.communication
    (Qma_comm.star_total star)
    (Qma_comm.qma_of_star star);
  Format.fprintf fmt
    "  Theorem 46 target local proof: O~(r^2 C^2) = %.3e qubits (executed concretely above via LSD)@\n"
    (Qmacc_compiler.sep_costs ~r ~c)

(* ------------------------------------------------------------------ *)
(* Table 3: lower bounds                                               *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3 -- lower bounds (formulas at concrete sizes + executable evidence)";
  let st = Random.State.make [| 303 |] in
  Format.fprintf fmt "%-34s %-18s %-30s %12s@\n" "bound" "params"
    "formula" "value";
  Format.fprintf fmt "%s@\n" (String.make 100 '-');
  List.iter
    (fun (r, n) ->
      Format.fprintf fmt "%-34s %-18s %-30s %12.1f@\n"
        "Thm 51 dQMA^sep,sep EQ/GT"
        (Printf.sprintf "r=%d n=%d" r n)
        "total proof = Omega(r log n)"
        (Lower_bounds.thm51_total_bound ~r ~n))
    [ (4, 32); (8, 1024); (16, 65536) ];
  List.iter
    (fun (r, n) ->
      Format.fprintf fmt "%-34s %-18s %-30s %12.3f@\n" "Thm 52 dQMA EQ/GT"
        (Printf.sprintf "r=%d n=%d" r n)
        "Omega(log^{.5-e} n / r^{1+e})"
        (Lower_bounds.thm52_bound ~r ~n ~eps:0.01 ~eps':0.01))
    [ (4, 1024); (8, 65536) ];
  List.iter
    (fun r ->
      Format.fprintf fmt "%-34s %-18s %-30s %12.1f@\n" "Cor 55 dQMA f^+"
        (Printf.sprintf "r=%d" r)
        "total proof = Omega(r)"
        (Lower_bounds.cor55_bound ~r))
    [ 8; 32 ];
  List.iter
    (fun n ->
      Format.fprintf fmt "%-34s %-18s %-30s %12.3f@\n" "Thm 56 dQMA EQ/GT"
        (Printf.sprintf "n=%d" n)
        "Omega(log^{.25-e} n)"
        (Lower_bounds.thm56_bound ~n ~eps:0.01))
    [ 1024; 1048576 ];
  List.iter
    (fun (p, label) ->
      match Discrepancy.qmacc_lower_bound_formula p with
      | Some v ->
          Format.fprintf fmt "%-34s %-18s %-30s %12.3f@\n" label
            (Printf.sprintf "n=%d" p.Problems.n)
            "via QMA* reduction (Alg 11)" v
      | None -> ())
    [
      (Problems.disj 64, "Cor 64 DISJ Omega(n^{1/3})");
      (Problems.ip 64, "Cor 65 IP Omega(n^{1/2})");
      (Problems.pattern_and 32, "Cor 66 P_AND Omega(n^{1/3})");
    ];
  Format.fprintf fmt "@\nExecutable evidence:@\n";
  (* state counting: packing 2^n states into b qubits *)
  Format.fprintf fmt
    "  (Claim 49) max pairwise overlap of 32 random states on b qubits:@\n";
  List.iter
    (fun b ->
      let ov = Lower_bounds.max_pairwise_overlap_random st ~qubits:b ~count:32 in
      Format.fprintf fmt "    b = %d: %.4f%s@\n" b ov
        (if ov > 0.9 then "  <- states collide: verifiers foolable" else ""))
    [ 1; 2; 4; 6 ];
  (* Lemma 53 gap attack *)
  let x, y = distinct_pair st 24 in
  let acc = Lower_bounds.gap_splice_accept ~seed:31 ~n:24 ~r:8 ~gap:4 x y in
  Format.fprintf fmt
    "  (Lemma 53) EQ chain with a proof-free gap at nodes 4,5: marginal-splice \
     proof accepted with probability %.3f on a NO instance@\n"
    acc;
  (* Klauck-style discrepancy numbers on small instances *)
  Format.fprintf fmt
    "  (Thm 63 shape) sqrt(log 1/disc) via the spectral bound on n = 6:@\n";
  List.iter
    (fun (p, name) ->
      Format.fprintf fmt "    %-6s disc <= %.5f   sqrt(log 1/disc) = %.3f@\n" name
        (Discrepancy.spectral_discrepancy_bound p)
        (Discrepancy.sqrt_log_inv_disc p))
    [ (Problems.ip 6, "IP"); (Problems.disj 6, "DISJ"); (Problems.eq 6, "EQ") ];
  Format.fprintf fmt
    "    (EQ's discrepancy is constant -- Theorem 63 is vacuous for it, as the paper notes.)@\n"

(* ------------------------------------------------------------------ *)
(* Soundness sweep                                                     *)
(* ------------------------------------------------------------------ *)

let soundness () =
  section "Soundness sweep -- EQ on a path (Lemma 17 shape)";
  let st = Random.State.make [| 404 |] in
  let n = 64 in
  let x, y = distinct_pair st n in
  Format.fprintf fmt "%4s %14s %14s %14s %16s %14s@\n" "r" "best attack"
    "1-4/(81 r^2)" "rejection" "4/(81 r) / sum" "attack^k (k=42r^2)";
  Format.fprintf fmt "%s@\n" (String.make 84 '-');
  List.iter
    (fun r ->
      let p = Eq_path.make ~repetitions:1 ~seed:41 ~n ~r () in
      let best, _ = Eq_path.best_attack_accept p x y in
      let bound = Eq_path.soundness_bound_single ~r in
      let k = Eq_path.paper_repetitions ~r in
      Format.fprintf fmt "%4d %14.6f %14.6f %14.6f %16.6f %14.3e@\n" r best bound
        (1. -. best)
        (4. /. (81. *. float_of_int r))
        (Sim.repeat_accept k best))
    [ 2; 4; 8; 16; 32; 64 ];
  Format.fprintf fmt
    "@\nThe measured rejection probability of the best product attack scales as \
     Theta(1/r),@\nconsistent with Lemma 17's bound sum_j p_j >= 4/(81 r); the \
     O(r^2)-fold repetition@\ndrives every attack's acceptance far below 1/3.@\n"

(* ------------------------------------------------------------------ *)
(* Entangled vs separable (exact simulator)                            *)
(* ------------------------------------------------------------------ *)

let entangled () =
  section "Proof-class hierarchy -- exact optima on toy instances";
  Format.fprintf fmt "%4s %14s %18s %16s %14s@\n" "r" "product"
    "node-entangled" "global" "Lemma 17 cap";
  Format.fprintf fmt "%s@\n" (String.make 72 '-');
  let x_state = Exact.toy_state ~qubits:1 5 in
  let y_state = Exact.toy_state ~qubits:1 11 in
  List.iter
    (fun r ->
      let cfg = { Exact.r; qubits = 1 } in
      let library = Exact.best_product_attack cfg ~x_state ~y_state in
      let st = Random.State.make [| r; 0x5e8 |] in
      let _, prod_opt =
        Sep_sim.optimize_product st ~d:2 ~r ~left:x_state
          ~final:(Qdp_linalg.Mat.of_vec y_state) ~sweeps:12
      in
      let product = Float.max library prod_opt in
      let st' = Random.State.make [| r; 0x5e9 |] in
      let _, sep =
        Sep_sim.optimize st' ~d:2 ~r ~left:x_state
          ~final:(Qdp_linalg.Mat.of_vec y_state) ~sweeps:12
      in
      let sep = Float.max sep product in
      let opt, _ = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
      Format.fprintf fmt "%4d %14.6f %18.6f %16.6f %14.6f@\n" r product sep opt
        (Eq_path.soundness_bound_single ~r))
    [ 2; 3; 4; 5 ];
  Format.fprintf fmt
    "@\nThree proof classes, three exact engines: product pairs (the transfer \
     DP),@\nwithin-node entanglement (tensor-network contraction + coordinate \
     ascent,@\nDefinition 8's class), and global entanglement (top eigenvalue \
     of the@\nacceptance form, Definition 6's class).  Each inclusion buys the \
     prover only@\na little, and all stay within the Lemma 17 bound -- the gap \
     the paper's@\nTheorems 46/51/52 relate, measured end-to-end.@\n"

(* ------------------------------------------------------------------ *)
(* Spanning-tree construction (the Section 3.3 / FGNP21 Fig. 1 analog) *)
(* ------------------------------------------------------------------ *)

let tree () =
  section "Spanning-tree construction (Section 3.3)";
  let st = Random.State.make [| 505 |] in
  let g = Graph.random_connected st ~n:14 ~extra_edges:5 in
  let terminals = [ 0; 4; 9; 13 ] in
  let tr = Spanning_tree.build g ~terminals in
  Format.fprintf fmt
    "graph: 14 vertices, %d edges, radius %d; terminals %s@\n"
    (List.length (Graph.edges g))
    (Graph.radius g)
    (String.concat "," (List.map string_of_int terminals));
  Format.fprintf fmt "tree: %d nodes, height %d (radius + 1 bound holds: %b)@\n@\n"
    (Spanning_tree.size tr) (Spanning_tree.height tr)
    (Spanning_tree.height tr <= Graph.radius g + 1);
  let rec draw v indent =
    let marker =
      match Spanning_tree.terminal_of tr v with
      | Some i -> Printf.sprintf " [terminal %d]" (i + 1)
      | None -> ""
    in
    Format.fprintf fmt "%s- node %d (vertex %d)%s@\n" indent v
      (Spanning_tree.host tr v) marker;
    List.iter (fun c -> draw c (indent ^ "  ")) (Spanning_tree.children tr v)
  in
  draw (Spanning_tree.root tr) "";
  let cert = Spanning_tree.certificate_of g ~root_vertex:(Spanning_tree.host tr (Spanning_tree.root tr)) in
  let ok = Array.for_all (fun b -> b) (Spanning_tree.verify_certificate g cert) in
  Format.fprintf fmt
    "@\nLemma 18 certificate (%d bits/vertex): honest assignment accepted by all \
     vertices: %b@\n"
    (Spanning_tree.certificate_bits g)
    ok;
  cert.Spanning_tree.cert_dist.(7) <- 0;
  let tampered =
    Array.for_all (fun b -> b) (Spanning_tree.verify_certificate g cert)
  in
  Format.fprintf fmt "tampered assignment accepted by all vertices: %b@\n" tampered

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation 1 -- permutation test vs FGNP21 random-child SWAP test";
  let st = Random.State.make [| 606 |] in
  let n = 32 in
  let x, y = distinct_pair st n in
  Format.fprintf fmt "%4s %22s %22s %12s@\n" "t" "perm-test attack"
    "random-child attack" "reps ratio";
  Format.fprintf fmt "%s@\n" (String.make 64 '-');
  List.iter
    (fun t ->
      let g = Graph.star t in
      let terminals = List.init t (fun i -> i + 1) in
      let inputs = Array.init t (fun i -> if i = t - 1 then y else Gf2.copy x) in
      let attack variant =
        let p =
          Eq_tree.make ~repetitions:1 ~use_permutation_test:variant ~seed:61 ~n
            ~r:2 ()
        in
        fst (Eq_tree.best_attack_accept p g ~terminals ~inputs)
      in
      let perm = attack true and fgnp = attack false in
      (* repetitions needed to reach acceptance 1/3 *)
      let reps p = Float.log (1. /. 3.) /. Float.log p in
      Format.fprintf fmt "%4d %22.6f %22.6f %12.2f@\n" t perm fgnp
        (reps fgnp /. reps perm))
    [ 3; 4; 5; 6 ];
  Format.fprintf fmt
    "@\nThe random-child variant needs ~t x more repetitions at the same \
     soundness,@\nreproducing the paper's improvement from O(t r^2 log n) to \
     O(r^2 log n).@\n";

  section "Ablation 2 -- relay spacing (Theorem 22: optimal spacing ~ n^{1/3})";
  (* brute-force the total-proof-minimizing spacing; Theorem 22 predicts
     it scales as n^{1/3} (the constant reflects the repetition and
     code-rate constants of the implementation) *)
  let r = 256 in
  Format.fprintf fmt "%10s %12s %16s %18s@\n" "n" "best s" "total proof"
    "best s / n^{1/3}";
  Format.fprintf fmt "%s@\n" (String.make 60 '-');
  List.iter
    (fun n ->
      let best_s = ref 1 and best_total = ref max_int in
      for s = 1 to r do
        let p = Relay.make ~spacing:s ~seed:62 ~n ~r () in
        let total = (Relay.costs p).Report.total_proof_qubits in
        if total < !best_total then begin
          best_total := total;
          best_s := s
        end
      done;
      Format.fprintf fmt "%10d %12d %16d %18.3f@\n" n !best_s !best_total
        (float_of_int !best_s /. Float.pow (float_of_int n) (1. /. 3.)))
    [ 1 lsl 14; 1 lsl 17; 1 lsl 20; 1 lsl 23 ];
  Format.fprintf fmt
    "@\nThe brute-force optimal spacing tracks c n^{1/3} with a constant c \
     set by the@\nrepetition constant 42 and the fingerprint register size, \
     matching Theorem 22's@\nchoice of relay interval.@\n";

  section
    "Ablation 3 -- symmetrization step (Section 1.3): registers vs per-round soundness";
  let n = 48 in
  let x3, y3 = distinct_pair st n in
  Format.fprintf fmt "%4s %16s %16s %14s %14s@\n" "r" "sym attack"
    "forwarding attack" "sym regs" "fwd regs";
  Format.fprintf fmt "%s@\n" (String.make 70 '-');
  List.iter
    (fun r ->
      let p = Eq_path.make ~repetitions:1 ~seed:64 ~n ~r () in
      let sym, _ = Eq_path.best_attack_accept p x3 y3 in
      let fwd =
        List.fold_left
          (fun best (_, s) ->
            Float.max best (Eq_path.fgnp_forwarding_accept p x3 y3 s))
          0.
          (Eq_path.attack_library p x3 y3)
      in
      Format.fprintf fmt "%4d %16.6f %16.6f %14d %14d@\n" r sym fwd
        (Eq_path.costs p).Report.local_proof_qubits
        (Eq_path.fgnp_costs p).Report.local_proof_qubits)
    [ 2; 4; 8; 16 ];
  Format.fprintf fmt
    "@\nThe symmetrization step makes every SWAP test fire with certainty: it \
     doubles@\nthe registers but strictly lowers the best attack per round \
     (and makes the@\nsoundness analysis unconditional -- the paper's Section \
     1.3 improvement).@\n";

  section "Ablation 4 -- repetition count k vs measured soundness";
  let x, y = distinct_pair st 48 in
  let r = 6 in
  let p1 = Eq_path.make ~repetitions:1 ~seed:63 ~n:48 ~r () in
  let single, name = Eq_path.best_attack_accept p1 x y in
  Format.fprintf fmt "single-round best attack (%s): %.6f@\n" name single;
  Format.fprintf fmt "%8s %16s %16s@\n" "k" "predicted p^k" "below 1/3?";
  List.iter
    (fun k ->
      let v = Sim.repeat_accept k single in
      Format.fprintf fmt "%8d %16.6e %16b@\n" k v (v < 1. /. 3.))
    [ 1; 8; 32; 128; Eq_path.paper_repetitions ~r ]

(* ------------------------------------------------------------------ *)
(* Variants: dQCMA, LOCC, and the Section 6.2 corollaries              *)
(* ------------------------------------------------------------------ *)

let variants () =
  section "Variants -- dQCMA (classical proofs), LOCC conversion, Section 6.2 instances";
  let st = Random.State.make [| 707 |] in
  let n = 48 and r = 6 in
  let x, y = distinct_pair st n in
  Format.fprintf fmt "dQMA vs dQCMA for EQ (n=%d, r=%d):@\n" n r;
  Format.fprintf fmt "%-10s %14s %14s %16s@\n" "model" "local proof"
    "single attack" "attack w/ k=32";
  Format.fprintf fmt "%s@\n" (String.make 58 '-');
  let qp = Eq_path.make ~repetitions:32 ~seed:71 ~n ~r () in
  let qa, _ = Eq_path.best_attack_accept qp x y in
  Format.fprintf fmt "%-10s %14d %14.6f %16.3e@\n" "dQMA"
    (Eq_path.costs qp).Report.local_proof_qubits qa (amplified 32 qa);
  let vp = Variants.make ~repetitions:32 ~seed:71 ~n ~r () in
  let va, _ = Variants.best_attack_accept vp x y in
  Format.fprintf fmt "%-10s %14d %14.6f %16.3e@\n" "dQCMA"
    (Variants.costs vp).Report.local_proof_qubits va (amplified 32 va);
  Format.fprintf fmt
    "(dQCMA proofs are classical strings: %d bits/node, independent of k,@\n\
    \ but linear in n -- the log n proof advantage needs quantum proofs.)@\n"
    n;
  Format.fprintf fmt
    "@\nProof vs communication across models (EQ, n=%d, r=%d):@\n" n r;
  Format.fprintf fmt "%-24s %14s %14s@\n" "model" "proof/node" "msg/edge";
  Format.fprintf fmt "%s@\n" (String.make 54 '-');
  let dma_c = (Dqma.dma_trivial ~n ~r).Dqma.costs (x, y) in
  Format.fprintf fmt "%-24s %14d %14d@\n" "dMA deterministic"
    dma_c.Report.local_proof_qubits dma_c.Report.local_message_qubits;
  let rpls_c = Rpls.costs { Rpls.n; r; parity_checks = 5 } in
  Format.fprintf fmt "%-24s %14d %14d@\n" "dMA randomized (RPLS)"
    rpls_c.Report.local_proof_qubits rpls_c.Report.local_message_qubits;
  Format.fprintf fmt "%-24s %14d %14d@\n" "dQMA (Thm 19)"
    (Eq_path.costs qp).Report.local_proof_qubits
    (Eq_path.costs qp).Report.local_message_qubits;
  Format.fprintf fmt
    "(randomization shrinks communication, FPSP19; only quantum proofs shrink \
     the proof itself)@\n";
  Format.fprintf fmt
    "@\nwhere the exponential separation bites -- proof bits/node at k = 32, r = 6:@\n";
  Format.fprintf fmt "%12s %16s %16s %10s@\n" "n" "classical (=n)" "dQMA (2 k q)"
    "ratio";
  List.iter
    (fun n ->
      let qp' = Eq_path.make ~repetitions:32 ~seed:71 ~n ~r:6 () in
      let q = (Eq_path.costs qp').Report.local_proof_qubits in
      Format.fprintf fmt "%12d %16d %16d %10.1f@\n" n n q
        (float_of_int n /. float_of_int q))
    [ 48; 4096; 1 lsl 16; 1 lsl 20; 1 lsl 24 ];
  Format.fprintf fmt
    "@\nLOCC dQMA (Lemma 20 / Corollary 21) applied to the EQ tree protocol:@\n";
  let g = Graph.star 4 in
  let terminals = [ 1; 2; 3; 4 ] in
  let tr = Eq_tree.tree_of g ~terminals in
  let tp = Eq_tree.make ~repetitions:8 ~seed:72 ~n:32 ~r:2 () in
  let base = Eq_tree.costs tp tr in
  let locc = Variants.locc_transform base ~d_max:(Graph.max_degree g) in
  Format.fprintf fmt "  quantum-communication: %a@\n" Report.pp_costs base;
  Format.fprintf fmt "  LOCC (Lemma 20):       %a@\n" Report.pp_costs locc;
  Format.fprintf fmt "  Corollary 21 formula:  %.3e@\n"
    (Variants.corollary21_local_proof ~d_max:(Graph.max_degree g)
       ~vertices:(Graph.size g) ~r:2 ~n:32);
  Format.fprintf fmt
    "@\nSection 6.2 instances through the Theorem 32 compiler (t=3 star, honest / far attack):@\n";
  let run_instance name proto yes_inputs no_inputs =
    let g = Graph.star 3 in
    let terminals = [ 1; 2; 3 ] in
    let params =
      Oneway_compiler.make ~repetitions:8 ~amplification:1 ~r:2 ~t:3
        ~n:proto.Oneway.problem.Problems.n ()
    in
    let compl_ =
      Oneway_compiler.accept params proto g ~terminals ~inputs:yes_inputs
        Oneway_compiler.Honest
    in
    let atk, _ =
      Oneway_compiler.best_attack_accept params proto g ~terminals
        ~inputs:no_inputs
    in
    Format.fprintf fmt "  %-28s s=%4d qubits: completeness %.4f, attack %.3e@\n"
      name proto.Oneway.message_qubits compl_ (amplified 8 atk)
  in
  (* Corollary 39: LTF *)
  let weights = Array.init 32 (fun i -> 1 + (i mod 3)) in
  let ltf = Xor_functions.ltf ~seed:73 ~weights ~theta:3 in
  let base_in = Gf2.random st 32 in
  let near = Gf2.copy base_in in
  Gf2.set near 0 (not (Gf2.get near 0));
  let far = Gf2.xor base_in (Gf2.random_weight st 32 16) in
  run_instance "LTF (Cor 39)" ltf
    [| Gf2.copy base_in; Gf2.copy base_in; near |]
    [| Gf2.copy base_in; Gf2.copy base_in; far |];
  (* Corollary 35: hypercube distance *)
  let hc = Xor_functions.hypercube_distance ~seed:74 ~bits:48 ~d:2 in
  let u = Gf2.random st 48 in
  let close_v = Gf2.xor u (Gf2.random_weight st 48 2) in
  let far_v = Gf2.xor u (Gf2.random_weight st 48 24) in
  run_instance "hypercube dist (Cor 35)" hc
    [| Gf2.copy u; Gf2.copy u; close_v |]
    [| Gf2.copy u; Gf2.copy u; far_v |];
  (* Corollary 37: l1 of quantized vectors *)
  let res = 16 and coords = 4 in
  let l1 = Xor_functions.l1_distance ~seed:75 ~coords ~resolution:res ~d:0.5 in
  let e v = Oneway.thermometer ~resolution:res v in
  let va' = [| 0.25; -0.5; 0.75; 0.0 |] in
  let vb = [| 0.25; -0.375; 0.75; 0.0 |] in
  let vc = [| -0.75; 0.5; -0.25; 0.875 |] in
  run_instance "l1 vectors (Cor 37)" l1
    [| e va'; e va'; e vb |]
    [| e va'; e va'; e vc |]

(* ------------------------------------------------------------------ *)
(* CSV sweeps (figure series)                                          *)
(* ------------------------------------------------------------------ *)

let sweep () =
  (* series 1: total proof size vs n at fixed r -- the quantum/classical
     separation of Theorems 19/22 vs Corollary 25 *)
  Format.fprintf fmt
    "# series 1: total proof vs n (r = 16)@\n\
     n,dqma_total_qubits,relay_total_qubits,classical_lower_bits,trivial_classical_bits@\n";
  let r = 16 in
  List.iter
    (fun n ->
      let k = Eq_path.paper_repetitions ~r in
      let eq = Eq_path.make ~repetitions:k ~seed:91 ~n ~r () in
      let relay = Relay.make ~seed:91 ~n ~r () in
      let classical_lower = (r - 1) / 2 * ((n - 1) / 2) in
      Format.fprintf fmt "%d,%d,%d,%d,%d@\n" n
        (Eq_path.costs eq).Report.total_proof_qubits
        (Relay.costs relay).Report.total_proof_qubits
        classical_lower
        ((r + 1) * n))
    [ 16; 64; 256; 1024; 4096; 16384 ];
  (* series 2: best-attack rejection vs r (the Lemma 17 1/r shape) *)
  Format.fprintf fmt
    "@\n# series 2: single-round best-attack rejection vs r (n = 64)@\n\
     r,rejection,lemma17_lower@\n";
  let st = Random.State.make [| 92 |] in
  let x, y = distinct_pair st 64 in
  List.iter
    (fun r ->
      let p = Eq_path.make ~repetitions:1 ~seed:92 ~n:64 ~r () in
      let best, _ = Eq_path.best_attack_accept p x y in
      Format.fprintf fmt "%d,%.8f,%.8f@\n" r (1. -. best)
        (4. /. (81. *. float_of_int (r * r))))
    [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64 ];
  (* series 3: the proof-class hierarchy vs r on the toy instance *)
  Format.fprintf fmt
    "@\n# series 3: proof-class hierarchy vs r (1-qubit toy instance)@\n\
     r,product,node_entangled,global_entangled,lemma17_cap@\n";
  let x_state = Exact.toy_state ~qubits:1 5 in
  let y_state = Exact.toy_state ~qubits:1 11 in
  List.iter
    (fun r ->
      let cfg = { Exact.r; qubits = 1 } in
      let library = Exact.best_product_attack cfg ~x_state ~y_state in
      let stp = Random.State.make [| r; 94 |] in
      let _, prod_opt =
        Sep_sim.optimize_product stp ~d:2 ~r ~left:x_state
          ~final:(Qdp_linalg.Mat.of_vec y_state) ~sweeps:12
      in
      let product = Float.max library prod_opt in
      let st' = Random.State.make [| r; 93 |] in
      let _, sep =
        Sep_sim.optimize st' ~d:2 ~r ~left:x_state
          ~final:(Qdp_linalg.Mat.of_vec y_state) ~sweeps:12
      in
      let sep = Float.max sep product in
      let opt, _ = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
      Format.fprintf fmt "%d,%.8f,%.8f,%.8f,%.8f@\n" r product sep opt
        (Eq_path.soundness_bound_single ~r))
    [ 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Conformance check over the packaged protocol suite                  *)
(* ------------------------------------------------------------------ *)

let check () =
  section "Conformance suite -- Definitions 5-8 as values (Dqma framework)";
  Protocols.init ();
  let suite = Registry.demo_suite ~seed:808 in
  let failures = ref 0 in
  List.iter
    (fun packed ->
      let name, e = Dqma.evaluate_packed packed in
      Format.fprintf fmt "%a@\n" Dqma.pp_evaluation (name, e);
      if not e.Dqma.meets_spec then incr failures)
    suite;
  Format.fprintf fmt "@\n%d protocol/instance pairs evaluated, %d spec violations@\n"
    (List.length suite) !failures;
  if !failures > 0 then exit 1

(* The arXiv:2210.01390 turn-reduction table over the interactive
   equality family.  Deliberately NOT part of [all]: the committed
   tables_output.txt predates the interactive protocols and must stay
   byte-identical; the turns table is regenerated by `make turns` /
   the CI turns job instead. *)
let turns () =
  section "Turn reduction -- interactive equality (LMN22, arXiv:2210.01390)";
  let t = Turns_exp.run ~seed:42 ~n:32 ~r:6 ~trials:2000 () in
  Format.fprintf fmt "%a@\n" Turns_exp.pp t

let all () =
  table1 ();
  table2 ();
  table3 ();
  soundness ();
  entangled ();
  tree ();
  ablation ();
  variants ();
  check ()

(* Split `--metrics FILE` / `--trace FILE` / `--jobs N` /
   `--workers N` / `--profile` out of argv; what remains selects the
   table as before. *)
let parse_args () =
  let metrics = ref None
  and trace = ref None
  and profile = ref false
  and rest = ref [] in
  let argv = Sys.argv in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--metrics" when !i + 1 < Array.length argv ->
        incr i;
        metrics := Some argv.(!i)
    | "--trace" when !i + 1 < Array.length argv ->
        incr i;
        trace := Some argv.(!i)
    | "--profile" -> profile := true
    | "--jobs" when !i + 1 < Array.length argv -> (
        incr i;
        match int_of_string_opt argv.(!i) with
        | Some j when j >= 1 -> Qdp_par.set_jobs j
        | Some _ | None ->
            Printf.eprintf "tables: --jobs expects a positive integer\n";
            exit 2)
    | "--workers" when !i + 1 < Array.length argv -> (
        incr i;
        match int_of_string_opt argv.(!i) with
        | Some w when w >= 0 -> Qdp_dist.set_workers w
        | Some _ | None ->
            Printf.eprintf "tables: --workers expects a non-negative integer\n";
            exit 2)
    | a -> rest := a :: !rest);
    incr i
  done;
  let cmd = match List.rev !rest with c :: _ -> c | [] -> "all" in
  (cmd, !metrics, !trace, !profile)

let () =
  let cmd, metrics, trace, profile = parse_args () in
  (* QDP_MODEL=auto self-benchmarks and installs the kernel cost model
     (QDP_MODEL=FILE loads recorded calibration samples instead);
     dispatch decisions change, output bytes must not — CI diffs the
     tables with and without it. *)
  (match Sys.getenv_opt "QDP_MODEL" with
  | None | Some "" | Some "off" -> ()
  | Some "auto" -> ignore (Qdp_linalg.Tune.autotune ())
  | Some path -> (
      match Qdp_model.load_file path with
      | Ok m -> Qdp_model.install m
      | Error msg ->
          Printf.eprintf
            "tables: QDP_MODEL %s: %s (falling back to static dispatch)\n"
            path msg));
  if metrics <> None || trace <> None then Qdp_obs.set_enabled true;
  if profile then begin
    Qdp_obs.Prof.set_enabled true;
    Qdp_obs.Calib.set_enabled true
  end;
  let write what f file =
    try f file
    with Sys_error msg ->
      Printf.eprintf "tables: cannot write %s: %s\n" what msg
  in
  let dump () =
    Option.iter
      (write "metrics" @@ fun file ->
       Qdp_obs.Metrics.write_json file (Qdp_obs.Metrics.snapshot ()))
      metrics;
    Option.iter (write "trace" Qdp_obs.Trace.write_jsonl) trace;
    (* stderr only: the table output on stdout must stay byte-identical
       whether or not profiling is on. *)
    if profile then Format.eprintf "%a@?" Qdp_obs.Prof.report ()
  in
  Fun.protect ~finally:dump (fun () ->
      Qdp_obs.Trace.with_span ("tables." ^ cmd) @@ fun () ->
      Qdp_obs.Prof.section cmd (fun () ->
          match cmd with
          | "t1" -> table1 ()
          | "t2" -> table2 ()
          | "t3" -> table3 ()
          | "soundness" -> soundness ()
          | "entangled" -> entangled ()
          | "tree" -> tree ()
          | "ablation" -> ablation ()
          | "variants" -> variants ()
          | "sweep" -> sweep ()
          | "check" -> check ()
          | "turns" -> turns ()
          | "all" -> all ()
          | other ->
              Format.fprintf fmt
                "unknown command %s; expected t1|t2|t3|soundness|entangled|tree|ablation|variants|sweep|check|turns|all@\n"
                other;
              exit 1));
  Format.pp_print_flush fmt ()
