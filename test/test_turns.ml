(* Tests for the turn-based runtime refactor: the one-shot [run] must
   be observationally the 1-turn special case of [run_turns], the
   registry's demo instances must behave deterministically through the
   new engine, transcripts must be reproducible from the seed, and the
   turn-reduction experiment must be byte-identical across job
   counts. *)

open Qdp_network
open Qdp_core

let () = Protocols.init ()

(* The jobs 1 vs 4 byte-identity check must really take the parallel
   path, even on a 1-core host. *)
let () = Qdp_par.set_oversubscribe true

(* --- a small parameterized node program for differential runs --- *)

(* Gossip-sum: every node starts with [weight * id], forwards its
   running sum each round, and accepts iff the final sum has the given
   parity.  Payloads are ints, so fault corruption (+1 by default
   [Fault.make]... actually test corruption flips parity) perturbs
   verdicts — good observational surface. *)
type gossip = { mutable acc : int }

let gossip_program ~weight ~rounds:_ g =
  {
    Runtime.init = (fun id -> { acc = weight * (id + 1) });
    round =
      (fun ~round ~id state ~inbox ->
        List.iter (fun (_, v) -> state.acc <- state.acc + v) inbox;
        ( state,
          List.map (fun v -> (v, state.acc + round)) (Graph.neighbours g id) ));
    finish = (fun ~id:_ state -> if state.acc land 1 = 0 then Accept else Reject);
  }

(* The same program expressed directly against the turn engine, the
   way [Runtime.run] wraps it internally. *)
let as_turn_program (p : ('s, 'm) Runtime.program) =
  {
    Runtime.tp_init = p.Runtime.init;
    tp_deliver = (fun ~turn:_ ~id:_ s _ -> s);
    tp_round =
      (fun ~turn:_ ~round ~coin:_ ~id s ~inbox -> p.Runtime.round ~round ~id s ~inbox);
    tp_finish = (fun ~transcript:_ ~id s -> p.Runtime.finish ~id s);
  }

let fault_spec strength turn =
  {
    Fault.none with
    default_link = { Fault.drop = strength; duplicate = strength /. 2.; corrupt = strength };
    turn;
  }

let counts_tuple = function
  | None -> (-1, -1, -1, -1, -1, -1)
  | Some c ->
      Fault.
        (c.delivered, c.dropped, c.duplicated, c.corrupted, c.suppressed,
         c.crashed)

let stats_tuple (s : Runtime.stats) =
  (s.Runtime.messages, s.rounds_run, s.per_edge, s.down, counts_tuple s.faults)

(* one_shot through [run] vs an explicit 1-turn schedule through
   [run_turns]: verdicts and every shared stats field must coincide,
   with and without faults. *)
let prop_one_shot_equivalence =
  QCheck.Test.make ~name:"run is the 1-turn special case of run_turns"
    ~count:100 QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 0x715 |] in
      let n = 3 + Random.State.int st 8 in
      let g =
        match seed mod 3 with
        | 0 -> Graph.path (n - 1)
        | 1 -> Graph.cycle n
        | _ -> Graph.random_connected st ~n ~extra_edges:(seed mod 4)
      in
      let rounds = 1 + (seed mod 4) in
      let weight = 1 + (seed mod 5) in
      let faults () =
        if seed mod 2 = 0 then None
        else
          Some
            (fun () ->
              Fault.make
                ~st:(Random.State.make [| seed; 0xfa17 |])
                (fault_spec 0.2 None))
      in
      let run_legacy () =
        let program = gossip_program ~weight ~rounds g in
        match faults () with
        | None -> Runtime.run g ~rounds program
        | Some mk -> Runtime.run ~faults:(mk ()) g ~rounds program
      in
      let run_explicit () =
        let program = as_turn_program (gossip_program ~weight ~rounds g) in
        let go ?faults () =
          Runtime.run_turns ?faults g
            ~schedule:(Runtime.Turn.one_shot ~rounds)
            ~prover:(fun ~turn:_ _ -> [])
            program
        in
        let v, s, _ =
          match faults () with None -> go () | Some mk -> go ~faults:(mk ()) ()
        in
        (v, s)
      in
      let v1, s1 = run_legacy () in
      let v2, s2 = run_explicit () in
      v1 = v2 && stats_tuple s1 = stats_tuple s2)

(* Delivery-time faults aimed at turn 1 (the empty prover turn) or at
   a turn past the schedule must be inert on one-shot protocols;
   aimed at turn 2 they must reproduce the untargeted run exactly. *)
let prop_turn_targeting_on_one_shot =
  QCheck.Test.make ~name:"turn-targeted faults on the one-shot schedule"
    ~count:60 QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 0x9e2 |] in
      let n = 4 + Random.State.int st 6 in
      let g = Graph.cycle n in
      let rounds = 2 in
      let run turn =
        let inj =
          Fault.make ~st:(Random.State.make [| seed; 0x1ce |]) (fault_spec 0.3 turn)
        in
        Runtime.run ~faults:inj g ~rounds (gossip_program ~weight:3 ~rounds g)
      in
      let clean = Runtime.run g ~rounds (gossip_program ~weight:3 ~rounds g) in
      let v_none, s_none = run None in
      let v_two, s_two = run (Some 2) in
      let v_one, s_one = run (Some 1) in
      let v_far, s_far = run (Some 9) in
      v_one = fst clean
      && s_one.Runtime.messages = (snd clean).Runtime.messages
      && v_far = fst clean
      && s_far.Runtime.messages = (snd clean).Runtime.messages
      && v_two = v_none
      && stats_tuple s_two = stats_tuple s_none)

(* --- registry demo instances through the new engine --- *)

(* Every network-realized entry must be a deterministic function of
   the RNG seed: the whole demo cross-validation (which samples the
   network backend of every strategy) must reproduce byte-for-byte
   from an equal seed.  This is the regression harness for "all
   existing protocols pass through the turn engine unchanged". *)
let test_registry_network_deterministic () =
  let spec = { Registry.default_spec with Registry.n = 16; r = 3; t = 3 } in
  let snapshot () =
    List.concat_map
      (fun entry ->
        match
          Registry.cross_validate_demo ~trials:25
            ~st:(Random.State.make [| 0x5eed |])
            spec entry
        with
        | None -> []
        | Some sides ->
            List.concat_map
              (fun (side, checks) ->
                List.map
                  (fun c ->
                    ( (Registry.info entry).Registry.info_id,
                      side,
                      c.Dqma.check_strategy,
                      c.Dqma.sampled ))
                  checks)
              sides)
      (Registry.all ())
  in
  let a = snapshot () and b = snapshot () in
  Alcotest.(check int) "same number of checks" (List.length a) (List.length b);
  List.iter2
    (fun (id, side, strat, s1) (_, _, _, s2) ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s %s %s reproducible" id side strat)
        s1 s2)
    a b

let test_ieq_demo_spec () =
  List.iter
    (fun id ->
      match Registry.find id with
      | None -> Alcotest.failf "registry entry %s missing" id
      | Some entry ->
          let _, yes, no, _ =
            Registry.evaluate_demo Registry.default_spec entry
          in
          Alcotest.(check bool) (id ^ " yes meets spec") true yes.Dqma.meets_spec;
          Alcotest.(check bool) (id ^ " no meets spec") true no.Dqma.meets_spec;
          let info = Registry.info entry in
          Alcotest.(check bool)
            (id ^ " is interactive iff ieq3/ieq2")
            (List.mem id [ "ieq3"; "ieq2" ])
            (info.Registry.info_turns > 1))
    [ "ieq3"; "ieq2"; "ieq1" ]

(* Differential cross-validation of the interactive entries at a
   small spec: analytic coin enumeration vs the sampled turn engine. *)
let test_ieq_cross_validate () =
  let spec = { Registry.default_spec with Registry.n = 12; r = 3 } in
  List.iter
    (fun id ->
      match Registry.find id with
      | None -> Alcotest.failf "registry entry %s missing" id
      | Some entry -> (
          match
            Registry.cross_validate_demo ~trials:300
              ~st:(Random.State.make [| 0xb11 |])
              spec entry
          with
          | None -> Alcotest.failf "%s has no network backend" id
          | Some sides ->
              List.iter
                (fun (side, checks) ->
                  List.iter
                    (fun c ->
                      if not c.Dqma.agree then
                        Alcotest.failf "%s %s %s: analytic %.6f vs sampled %.6f"
                          id side c.Dqma.check_strategy c.Dqma.analytic
                          c.Dqma.sampled)
                    checks)
                sides))
    [ "ieq3"; "ieq2"; "ieq1" ]

(* --- schedules and transcripts --- *)

let test_message_turns () =
  let open Runtime.Turn in
  Alcotest.(check int) "one_shot is 1 turn" 1 (message_turns (one_shot ~rounds:4));
  List.iter
    (fun turns ->
      let p = { Ieq.n = 16; r = 3; turns; repetitions = 1 } in
      let q = Ieq.field p in
      Alcotest.(check int)
        (Printf.sprintf "ieq%d schedule has %d message turns" turns turns)
        turns
        (message_turns (Runtime_ieq.schedule p ~q)))
    [ 3; 2; 1 ]

let transcript_of seed =
  let p = { Ieq.n = 16; r = 4; turns = 3; repetitions = 1 } in
  let q = Ieq.field p in
  let g = Graph.path p.Ieq.r in
  let echo =
    {
      Runtime.tp_init = (fun _ -> ());
      tp_deliver = (fun ~turn:_ ~id:_ () _ -> ());
      tp_round = (fun ~turn:_ ~round:_ ~coin:_ ~id:_ () ~inbox:_ -> ((), []));
      tp_finish = (fun ~transcript:_ ~id:_ () -> Runtime.Accept);
    }
  in
  let _, _, tr =
    Runtime.run_turns ~st:(Random.State.make [| seed; 0x7c1 |]) g
      ~schedule:(Runtime_ieq.schedule p ~q)
      ~prover:(fun ~turn transcript ->
        (* the prover replays what it can see: its turn number plus
           the first coin revealed so far *)
        let seen =
          match Runtime.Transcript.coins transcript ~turn:2 with
          | [||] -> -1
          | coins -> coins.(0)
        in
        List.init (p.Ieq.r + 1) (fun i -> (i, (turn * 1000) + seen)))
      echo
  in
  tr

let test_transcript_determinism () =
  let a = transcript_of 5 and b = transcript_of 5 and c = transcript_of 6 in
  Alcotest.(check bool)
    "same seed, same transcript" true
    (Runtime.Transcript.entries a = Runtime.Transcript.entries b);
  Alcotest.(check bool)
    "different seed, different coins" false
    (Runtime.Transcript.coins a ~turn:2 = Runtime.Transcript.coins c ~turn:2);
  (* the schedule shape is recorded entry-for-entry *)
  Alcotest.(check int) "one entry per schedule entry" 4
    (List.length (Runtime.Transcript.entries a));
  Alcotest.(check bool) "deterministic verifier turn records no coins" true
    (Runtime.Transcript.coins a ~turn:4 = [||]);
  (* prover writes recorded as delivered, in write order *)
  Alcotest.(check int) "commit turn carries r+1 writes" 5
    (List.length (Runtime.Transcript.prover_messages a ~turn:1))

(* --- the turn-reduction experiment --- *)

let test_turns_experiment_jobs_identical () =
  let saved = Qdp_par.jobs () in
  Fun.protect ~finally:(fun () -> Qdp_par.set_jobs saved) @@ fun () ->
  let run jobs =
    Qdp_par.set_jobs jobs;
    Turns_exp.to_json (Turns_exp.run ~seed:3 ~n:16 ~r:3 ~trials:200 ())
  in
  let j1 = run 1 and j4 = run 4 in
  Alcotest.(check string) "BENCH_turns.json byte-identical at jobs 1 vs 4" j1 j4

let test_turns_experiment_shape () =
  let t = Turns_exp.run ~seed:3 ~n:16 ~r:3 ~trials:120 () in
  let turns = List.map (fun w -> w.Turns_exp.tr_turns) t.Turns_exp.tx_rows in
  Alcotest.(check (list int)) "variants in 3/2/1 order" [ 3; 2; 1 ] turns;
  List.iter
    (fun w ->
      Alcotest.(check (float 1e-9)) "perfect completeness (analytic)" 1.
        w.Turns_exp.tr_honest_analytic;
      Alcotest.(check bool) "attack below the analytic bound" true
        (w.Turns_exp.tr_attack_analytic <= w.Turns_exp.tr_bound +. 1e-9))
    t.Turns_exp.tx_rows;
  (* the turn-reduction tradeoff: fewer turns, bigger certificates *)
  match t.Turns_exp.tx_rows with
  | [ three; _; one ] ->
      Alcotest.(check bool) "1-turn certificate is the blowup" true
        (one.Turns_exp.tr_cert_bits > 10 * three.Turns_exp.tr_cert_bits)
  | _ -> Alcotest.fail "expected three variants"

(* The wall-clock deadline: a program whose rounds sleep must abort
   with [Deadline_exceeded] under a tight limit, run to completion
   when the check is disabled, and pick up the configured default
   when no [~deadline] is passed. *)
let test_deadline () =
  let g = Graph.path 2 in
  let slow =
    {
      Runtime.tp_init = (fun _ -> ());
      tp_deliver = (fun ~turn:_ ~id:_ () _ -> ());
      tp_round =
        (fun ~turn:_ ~round:_ ~coin:_ ~id:_ () ~inbox:_ ->
          Unix.sleepf 0.005;
          ((), []));
      tp_finish = (fun ~transcript:_ ~id:_ () -> Runtime.Accept);
    }
  in
  let run ?deadline () =
    Runtime.run_turns ?deadline g
      ~schedule:(Runtime.Turn.one_shot ~rounds:3)
      ~prover:(fun ~turn:_ _ -> [])
      slow
  in
  (match run ~deadline:0.01 () with
  | _ -> Alcotest.fail "expected Deadline_exceeded"
  | exception Runtime.Deadline_exceeded { elapsed_s; limit_s } ->
      Alcotest.(check (float 0.)) "limit echoed" 0.01 limit_s;
      Alcotest.(check bool) "elapsed past limit" true (elapsed_s > limit_s));
  (match run ~deadline:0. () with
  | vs, _, _ ->
      Alcotest.(check bool) "deadline 0 disables the check" true
        (Array.for_all (fun v -> v = Runtime.Accept) vs)
  | exception Runtime.Deadline_exceeded _ ->
      Alcotest.fail "deadline 0 must disable the check");
  let saved = Runtime.deadline () in
  Fun.protect
    ~finally:(fun () -> Runtime.set_deadline saved)
    (fun () ->
      Runtime.set_deadline 0.01;
      match run () with
      | _ -> Alcotest.fail "expected Deadline_exceeded from default"
      | exception Runtime.Deadline_exceeded _ -> ())

(* Regression test for the NTP-step bug: the deadline must be driven
   by [Qdp_obs.Clock.now] (swappable, monotonically clamped), not raw
   [Unix.gettimeofday].  A fake clock steps backwards mid-run — with
   the raw clock that would make elapsed time negative and silence the
   deadline — then jumps far past the limit without any real time
   passing.  The run must still raise, with the elapsed time taken
   from the clamped fake clock. *)
let test_deadline_stepped_clock () =
  let t = ref 1000. in
  Qdp_obs.Clock.set_source (Some (fun () -> !t));
  Fun.protect ~finally:(fun () -> Qdp_obs.Clock.set_source None)
  @@ fun () ->
  let g = Graph.path 2 in
  (* round 0: NTP-style backwards step; round 1: modest forward tick;
     round 2: jump far past the 50 s limit *)
  let steps = [| 900.; 1002.; 1100. |] in
  let stepping =
    {
      Runtime.tp_init = (fun _ -> ());
      tp_deliver = (fun ~turn:_ ~id:_ () _ -> ());
      tp_round =
        (fun ~turn:_ ~round ~coin:_ ~id () ~inbox:_ ->
          if id = 0 && round < Array.length steps then t := steps.(round);
          ((), []));
      tp_finish = (fun ~transcript:_ ~id:_ () -> Runtime.Accept);
    }
  in
  match
    Runtime.run_turns ~deadline:50. g
      ~schedule:(Runtime.Turn.one_shot ~rounds:10)
      ~prover:(fun ~turn:_ _ -> [])
      stepping
  with
  | _ -> Alcotest.fail "expected Deadline_exceeded from the fake clock"
  | exception Runtime.Deadline_exceeded { elapsed_s; limit_s } ->
      Alcotest.(check (float 0.)) "limit echoed" 50. limit_s;
      Alcotest.(check bool) "elapsed never negative" true (elapsed_s >= 0.);
      Alcotest.(check (float 0.))
        "elapsed read off the clamped fake clock" 100. elapsed_s

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "turns"
    [
      ( "engine",
        qcheck [ prop_one_shot_equivalence; prop_turn_targeting_on_one_shot ] );
      ( "registry",
        [
          Alcotest.test_case "network backends reproducible" `Slow
            test_registry_network_deterministic;
          Alcotest.test_case "interactive demos meet spec" `Quick
            test_ieq_demo_spec;
          Alcotest.test_case "interactive cross-validation" `Slow
            test_ieq_cross_validate;
        ] );
      ( "transcripts",
        [
          Alcotest.test_case "message turns" `Quick test_message_turns;
          Alcotest.test_case "determinism" `Quick test_transcript_determinism;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "wall-clock limit" `Quick test_deadline;
          Alcotest.test_case "stepped fake clock" `Quick
            test_deadline_stepped_clock;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "jobs byte-identity" `Slow
            test_turns_experiment_jobs_identical;
          Alcotest.test_case "shape" `Quick test_turns_experiment_shape;
        ] );
    ]
