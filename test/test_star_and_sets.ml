(* Tests for the exact star-tree simulator and the Set Equality
   protocol. *)

open Qdp_linalg
open Qdp_codes
open Qdp_core

let rng = Random.State.make [| 0x5a5 |]

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let toy k = Exact.toy_state ~qubits:1 k

(* --- exact star vs the tree DP --- *)

let star_tree t =
  let g = Qdp_network.Graph.star t in
  Qdp_network.Spanning_tree.build_rooted_at g
    ~terminals:(List.init t (fun i -> i + 1))
    ~root_terminal:0

let test_star_matches_tree_dp () =
  (* product proofs: the exact state-vector run must equal the tree DP *)
  for t = 2 to 4 do
    let cfg = { Exact.t; star_qubits = 1 } in
    let st = Random.State.make [| t; 0xa11 |] in
    let gaussian () =
      let u1 = Float.max 1e-12 (Random.State.float st 1.) in
      let u2 = Random.State.float st 1. in
      Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
    in
    let rstate () = Vec.normalize (Vec.init 2 (fun _ -> Cx.re (gaussian ()))) in
    let root_state = rstate () in
    let leaf_states = Array.init (t - 1) (fun _ -> rstate ()) in
    let a = rstate () and b = rstate () in
    let exact =
      Exact.star_accept_prob cfg ~root_state ~leaf_states
        ~proof:(Vec.tensor a b)
    in
    let tr = star_tree t in
    let module T = Qdp_network.Spanning_tree in
    let inst =
      {
        Sim.tree = tr;
        root_state = [| root_state |];
        leaf_state =
          (fun v ->
            match T.terminal_of tr v with
            | Some i when i > 0 -> [| leaf_states.(i - 1) |]
            | _ -> invalid_arg "unexpected leaf");
        internal_pair = (fun _ -> ([| a |], [| b |]));
        use_permutation_test = true;
      }
    in
    let st2 = Random.State.make [| t |] in
    check_float ~eps:1e-9
      (Printf.sprintf "t=%d" t)
      (Sim.tree_accept st2 inst)
      exact
  done

let test_star_honest_complete () =
  let cfg = { Exact.t = 3; star_qubits = 1 } in
  let s = toy 4 in
  check_float ~eps:1e-9 "all equal accepted" 1.
    (Exact.star_accept_prob cfg ~root_state:s
       ~leaf_states:[| Vec.copy s; Vec.copy s |]
       ~proof:(Vec.tensor s s))

let test_star_entangled_optimum () =
  let cfg = { Exact.t = 3; star_qubits = 1 } in
  let root_state = toy 4 in
  let leaf_states = [| toy 4; toy 9 |] in
  (* one deviating leaf: a no instance *)
  let opt, proof = Exact.optimal_entangled_star_attack cfg ~root_state ~leaf_states in
  Alcotest.(check bool) "optimum below 1" true (opt < 0.9999);
  let achieved =
    Exact.star_accept_prob cfg ~root_state ~leaf_states
      ~proof:(Vec.normalize proof)
  in
  check_float ~eps:1e-7 "eigenvector achieves it" opt achieved;
  (* the honest-style product proof cannot beat the optimum *)
  let prod =
    Exact.star_accept_prob cfg ~root_state ~leaf_states
      ~proof:(Vec.tensor root_state root_state)
  in
  Alcotest.(check bool) "product below optimum" true (prod <= opt +. 1e-9)

(* --- set equality --- *)

let random_set st params =
  Array.init params.Set_eq.k (fun _ -> Gf2.random st params.Set_eq.n)

let test_set_fingerprint_normalized () =
  let params = Set_eq.make ~repetitions:1 ~seed:1 ~n:24 ~k:4 ~r:4 () in
  let s = random_set rng params and t = random_set rng params in
  let hs, ht = Set_eq.embedded_set_states params s t in
  check_float ~eps:1e-7 "hs unit" 1. (Vec.norm hs);
  check_float ~eps:1e-7 "ht unit" 1. (Vec.norm ht)

let test_set_overlap_tracks_intersection () =
  let params = Set_eq.make ~repetitions:1 ~seed:2 ~n:32 ~k:4 ~r:4 () in
  let s = random_set rng params in
  (* identical sets (any order): overlap 1 *)
  let shuffled = [| s.(3); s.(0); s.(2); s.(1) |] in
  check_float ~eps:1e-9 "order-invariant" 1. (Set_eq.set_overlap params s shuffled);
  (* share 2 of 4: overlap ~ 1/2 *)
  let half = [| s.(0); s.(1); Gf2.random rng 32; Gf2.random rng 32 |] in
  let ov = Set_eq.set_overlap params s half in
  Alcotest.(check bool)
    (Printf.sprintf "overlap %.3f near 1/2" ov)
    true
    (Float.abs (ov -. 0.5) < 0.2);
  (* disjoint: overlap small *)
  let disjoint = random_set rng params in
  let ov0 = Set_eq.set_overlap params s disjoint in
  Alcotest.(check bool)
    (Printf.sprintf "disjoint overlap %.3f small" ov0)
    true
    (Float.abs ov0 < 0.3)

let test_set_eq_completeness () =
  let params = Set_eq.make ~repetitions:2 ~seed:3 ~n:24 ~k:3 ~r:5 () in
  let s = random_set rng params in
  let permuted = [| s.(2); s.(0); s.(1) |] in
  check_float ~eps:1e-9 "equal sets accepted" 1.
    (Set_eq.accept params s permuted Strategy.All_left)

let test_set_eq_soundness () =
  let params = Set_eq.make ~repetitions:1 ~seed:4 ~n:24 ~k:3 ~r:5 () in
  let s = random_set rng params in
  let t = random_set rng params in
  let best, name = Set_eq.best_attack_accept params s t in
  Alcotest.(check bool)
    (Printf.sprintf "disjoint-set attack %.4f (%s) below bound" best name)
    true
    (best <= Eq_path.soundness_bound_single ~r:5 +. 1e-9);
  let k = Eq_path.paper_repetitions ~r:5 in
  Alcotest.(check bool) "amplified < 1/3" true
    (Sim.repeat_accept k best < 1. /. 3.)

let test_set_eq_costs_logarithmic () =
  (* a set fingerprint costs the same registers as a single-string
     fingerprint: superposition is free *)
  let c k =
    (Set_eq.costs (Set_eq.make ~repetitions:1 ~seed:5 ~n:32 ~k ~r:4 ())).Report
    .local_proof_qubits
  in
  Alcotest.(check int) "independent of k" (c 2) (c 8)

let () =
  Alcotest.run "star_and_sets"
    [
      ( "exact_star",
        [
          Alcotest.test_case "matches tree DP" `Quick test_star_matches_tree_dp;
          Alcotest.test_case "honest complete" `Quick test_star_honest_complete;
          Alcotest.test_case "entangled optimum" `Quick test_star_entangled_optimum;
        ] );
      ( "set_eq",
        [
          Alcotest.test_case "fingerprint normalized" `Quick
            test_set_fingerprint_normalized;
          Alcotest.test_case "overlap tracks intersection" `Quick
            test_set_overlap_tracks_intersection;
          Alcotest.test_case "completeness" `Quick test_set_eq_completeness;
          Alcotest.test_case "soundness" `Quick test_set_eq_soundness;
          Alcotest.test_case "costs log" `Quick test_set_eq_costs_logarithmic;
        ] );
    ]
