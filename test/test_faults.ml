(* The fault-injection layer: injector mechanics, trajectory noise vs
   exact channels, recovery semantics, and the sweep's two invariants
   (soundness contractivity, monotone completeness decay) as
   properties. *)

open Qdp_linalg
open Qdp_quantum
open Qdp_network
open Qdp_core
open Qdp_faults

let () = Protocols.init ()

let small_spec =
  { Registry.default_spec with Registry.n = 16; r = 3; t = 3 }

let suite_of id =
  match Registry.find id with
  | None -> Alcotest.failf "no registry entry %s" id
  | Some e -> (
      match Registry.fault_suite small_spec e with
      | Some s -> s
      | None -> Alcotest.failf "%s has no fault suite" id)

(* --- injector mechanics --- *)

let mk_inj ?corrupt ~seed spec =
  Fault.make ?corrupt ~st:(Random.State.make [| seed |]) spec

let link l = { Fault.none with Fault.default_link = l }

let test_deliver_drop () =
  let inj = mk_inj ~seed:1 (link { Fault.perfect_link with drop = 1. }) in
  Alcotest.(check (list int)) "dropped" []
    (Fault.deliver inj ~round:1 ~src:0 ~dst:1 7);
  let c = Fault.counts inj in
  Alcotest.(check int) "dropped count" 1 c.Fault.dropped;
  Alcotest.(check int) "delivered count" 0 c.Fault.delivered;
  Alcotest.(check bool) "injected" true (Fault.total_injected c > 0)

let test_deliver_duplicate () =
  let inj = mk_inj ~seed:1 (link { Fault.perfect_link with duplicate = 1. }) in
  Alcotest.(check (list int)) "two copies" [ 7; 7 ]
    (Fault.deliver inj ~round:1 ~src:0 ~dst:1 7);
  let c = Fault.counts inj in
  Alcotest.(check int) "duplicated count" 1 c.Fault.duplicated;
  Alcotest.(check int) "delivered count" 2 c.Fault.delivered

let test_deliver_corrupt () =
  let corrupt _st m = m + 100 in
  let inj =
    mk_inj ~corrupt ~seed:1 (link { Fault.perfect_link with corrupt = 1. })
  in
  Alcotest.(check (list int)) "corrupted payload" [ 107 ]
    (Fault.deliver inj ~round:1 ~src:0 ~dst:1 7);
  Alcotest.(check int) "corrupted count" 1 (Fault.counts inj).Fault.corrupted

let test_deliver_omit_babble () =
  let corrupt _st m = m + 100 in
  let omit =
    mk_inj ~seed:1 { Fault.none with Fault.nodes = [ (0, Fault.Omit 1.) ] }
  in
  Alcotest.(check (list int)) "omitted at source" []
    (Fault.deliver omit ~round:1 ~src:0 ~dst:1 7);
  Alcotest.(check (list int)) "other sources unaffected" [ 7 ]
    (Fault.deliver omit ~round:1 ~src:2 ~dst:1 7);
  let babble =
    mk_inj ~corrupt ~seed:1
      { Fault.none with Fault.nodes = [ (0, Fault.Babble 1.) ] }
  in
  Alcotest.(check (list int)) "extra corrupted copy" [ 7; 107 ]
    (Fault.deliver babble ~round:1 ~src:0 ~dst:1 7);
  let c = Fault.counts babble in
  Alcotest.(check int) "babble duplicated" 1 c.Fault.duplicated;
  Alcotest.(check int) "babble corrupted" 1 c.Fault.corrupted

let test_perfect_plan_is_none () =
  Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
  Alcotest.(check bool) "drop plan is not" false
    (Fault.is_none (link { Fault.perfect_link with drop = 0.5 }))

(* --- crash-stop through the runtime --- *)

let echo_program g =
  {
    Runtime.init = (fun _ -> 0);
    round =
      (fun ~round ~id heard ~inbox ->
        match round with
        | 1 -> (heard, List.map (fun v -> (v, ())) (Graph.neighbours g id))
        | _ -> (heard + List.length inbox, []));
    finish = (fun ~id:_ heard -> if heard > 0 then Runtime.Accept else Reject);
  }

let test_runtime_crash () =
  let g = Graph.path 3 in
  let spec =
    { Fault.none with
      Fault.nodes = [ (1, Fault.Crash { from_round = 1; prob = 1. }) ] }
  in
  let faults = mk_inj ~seed:3 spec in
  let verdicts, stats = Runtime.run ~faults g ~rounds:2 (echo_program g) in
  Alcotest.(check (list int)) "down list" [ 1 ] stats.Runtime.down;
  (* node 1 froze before sending: its neighbours heard one less *)
  Alcotest.(check bool) "crashed node rejects (heard nothing)" true
    (verdicts.(1) = Runtime.Reject);
  let c = Option.get stats.Runtime.faults in
  Alcotest.(check int) "crash counted" 1 c.Fault.crashed;
  Alcotest.(check bool) "inbox suppressed" true (c.Fault.suppressed > 0)

let test_stats_without_faults () =
  let g = Graph.path 3 in
  let _, stats = Runtime.run g ~rounds:2 (echo_program g) in
  Alcotest.(check (list int)) "no down nodes" [] stats.Runtime.down;
  Alcotest.(check bool) "no fault counts" true (stats.Runtime.faults = None)

(* --- recovery semantics --- *)

let test_execute_protocol_error () =
  let o =
    Plan.execute Plan.Reject_on_timeout (fun () ->
        raise (Runtime.Protocol_error { node = 2; round = 1; turn = 2; target = 9 }))
  in
  Alcotest.(check bool) "rejected" false o.Plan.accepted;
  Alcotest.(check int) "reported" 1 o.Plan.protocol_errors

let test_execute_retry_budget () =
  let calls = ref 0 in
  let suite = suite_of "rpls" in
  let case = List.hd suite.Registry.fs_yes in
  let proto_st = Random.State.make [| 11 |] in
  let env =
    Plan.env Plan.Drop ~strength:1. ~st:(Random.State.make [| 11; 1 |])
  in
  let o =
    Plan.execute (Plan.Retry 3) (fun () ->
        incr calls;
        case.Registry.fc_run proto_st env)
  in
  (* drop = 1 injects every time, so the whole budget is spent *)
  Alcotest.(check int) "budget exhausted" 4 !calls;
  Alcotest.(check int) "attempts recorded" 4 o.Plan.attempts;
  Alcotest.(check bool) "faults accumulated" true (o.Plan.injected > 0);
  let clean = Random.State.make [| 12 |] in
  let perfect = Fault_env.perfect ~st:(Random.State.make [| 12; 1 |]) in
  let o' =
    Plan.execute (Plan.Retry 3) (fun () ->
        case.Registry.fc_run clean perfect)
  in
  Alcotest.(check int) "clean run: single attempt" 1 o'.Plan.attempts;
  Alcotest.(check bool) "clean run accepts" true o'.Plan.accepted

(* --- Wilson intervals --- *)

let test_wilson () =
  let iv = Runtime.wilson ~hits:0 ~trials:100 () in
  Alcotest.(check (float 1e-9)) "zero hits lower" 0. iv.Runtime.lower;
  let iv = Runtime.wilson ~hits:100 ~trials:100 () in
  Alcotest.(check (float 1e-9)) "all hits upper" 1. iv.Runtime.upper;
  let iv = Runtime.wilson ~hits:50 ~trials:100 () in
  Alcotest.(check bool) "interval brackets the point" true
    (iv.Runtime.lower < iv.Runtime.point && iv.Runtime.point < iv.Runtime.upper);
  let narrow = Runtime.wilson ~z:1. ~hits:50 ~trials:100 () in
  Alcotest.(check bool) "smaller z is narrower" true
    (narrow.Runtime.upper -. narrow.Runtime.lower
    < iv.Runtime.upper -. iv.Runtime.lower);
  Alcotest.(check bool) "rejects bad input" true
    (try ignore (Runtime.wilson ~hits:5 ~trials:0 ()); false
     with Invalid_argument _ -> true)

(* --- trajectory noise vs the exact channel --- *)

let density samples st model psi =
  let dim = Vec.dim psi in
  let acc = ref (Mat.create dim dim) in
  for _ = 1 to samples do
    let out = Noise.apply model st psi in
    acc := Mat.add !acc (Mat.outer out out)
  done;
  Mat.scale (Cx.re (1. /. float_of_int samples)) !acc

let random_state st dim =
  Vec.normalize
    (Vec.init dim (fun _ ->
         Cx.make (Random.State.float st 2. -. 1.) (Random.State.float st 2. -. 1.)))

let test_noise_matches_channel () =
  let st = Random.State.make [| 0xace |] in
  let dim = 4 in
  let psi = random_state st dim in
  let rho = Mat.outer psi psi in
  let models =
    [
      Noise.depolarize 0.3;
      Noise.dephase 0.45;
      Noise.mix 0.5 (Noise.depolarize 0.6) (Noise.dephase 0.2);
      Noise.of_channel (Channel.dephase dim);
    ]
  in
  List.iter
    (fun model ->
      let ch = Noise.to_channel ~dim model in
      Alcotest.(check bool)
        (Noise.name model ^ " trace preserving")
        true
        (Channel.is_trace_preserving ch);
      let expected = Channel.apply ch rho in
      let sampled = density 12000 st model psi in
      let dist = Mat.frobenius_norm (Mat.sub expected sampled) in
      if dist > 0.06 then
        Alcotest.failf "%s trajectory average off by %.4f" (Noise.name model)
          dist)
    models

(* --- determinism --- *)

let tiny_sweep () =
  {
    (Sweep.default ~seed:7) with
    Sweep.trials = 30;
    grid = [ 0.; 0.25; 0.5 ];
    protocols = Some [ "rpls" ];
    kinds = Some [ Plan.Drop; Plan.Crash ];
    spec = { small_spec with Registry.seed = 7 };
  }

let test_sweep_deterministic () =
  let a = Sweep.to_json (Sweep.run (tiny_sweep ())) in
  let b = Sweep.to_json (Sweep.run (tiny_sweep ())) in
  Alcotest.(check string) "same seed, byte-identical JSON" a b

let test_fault_plan_deterministic () =
  let suite = suite_of "rpls" in
  let case = List.hd suite.Registry.fs_no in
  let run () =
    let proto_st = Random.State.make [| 21 |] in
    let env =
      Plan.env Plan.Flip ~strength:0.4 ~st:(Random.State.make [| 21; 1 |])
    in
    case.Registry.fc_run proto_st env
  in
  let v1, s1 = run () in
  let v2, s2 = run () in
  Alcotest.(check bool) "verdicts identical" true (v1 = v2);
  Alcotest.(check bool) "stats identical" true (s1 = s2)

(* --- the sweep invariants as properties --- *)

(* Soundness contractivity (Fact 4): no fault kind at any strength may
   push a no-instance acceptance above the noiseless analytic bound
   (beyond the Wilson interval's statistical slack). *)
let prop_soundness_contractive =
  QCheck.Test.make ~name:"soundness never exceeds the noiseless bound"
    ~count:12
    QCheck.(pair (int_bound 1000) (int_range 0 5))
    (fun (p1000, kind_idx) ->
      let strength = float_of_int p1000 /. 1000. in
      let suite = suite_of "rpls" in
      let kind = List.nth (Plan.applicable ~quantum_links:false) kind_idx in
      let bound =
        List.fold_left
          (fun acc c -> Float.max acc c.Registry.fc_analytic)
          0. suite.Registry.fs_no
      in
      let trials = 80 in
      let proto_st = Random.State.make [| 31; p1000; kind_idx |] in
      let env =
        Plan.env kind ~strength
          ~st:(Random.State.make [| 31; p1000; kind_idx; 1 |])
      in
      let hits = ref 0 in
      List.iter
        (fun case ->
          let h = ref 0 in
          for _ = 1 to trials do
            let o =
              Plan.execute Plan.Reject_on_timeout (fun () ->
                  case.Registry.fc_run proto_st env)
            in
            if o.Plan.accepted then incr h
          done;
          hits := max !hits !h)
        suite.Registry.fs_no;
      let iv = Runtime.wilson ~hits:!hits ~trials () in
      iv.Runtime.lower <= bound +. 1e-9)

(* Crashing a node that has already said everything it will say must
   not change anyone's verdict under degraded recovery: EQ's left
   endpoint only acts in round 1, so a round-2 crash is neutral. *)
let prop_crash_of_leaf_neutral =
  QCheck.Test.make ~name:"round-2 crash of EQ's left endpoint is neutral"
    ~count:20 QCheck.small_nat (fun seed ->
      let suite = suite_of "eq" in
      List.for_all
        (fun (case : Registry.fault_case) ->
          let clean =
            case.Registry.fc_run
              (Random.State.make [| seed |])
              (Fault_env.perfect ~st:(Random.State.make [| seed; 1 |]))
          in
          let crash_spec =
            { Fault.none with
              Fault.nodes = [ (0, Fault.Crash { from_round = 2; prob = 1. }) ]
            }
          in
          let crashed =
            case.Registry.fc_run
              (Random.State.make [| seed |])
              (Fault_env.make ~st:(Random.State.make [| seed; 1 |]) crash_spec)
          in
          let v_clean, _ = clean and v_crash, stats = crashed in
          stats.Runtime.down = [ 0 ] && v_clean = v_crash)
        (suite.Registry.fs_yes @ suite.Registry.fs_no))

(* Completeness under crash noise decays linearly with the crash
   probability: accept rate ~ 1 - p under strict recovery. *)
let prop_crash_completeness_tracks_prob =
  QCheck.Test.make ~name:"crash completeness tracks 1 - p" ~count:6
    (QCheck.int_bound 800) (fun p1000 ->
      let strength = float_of_int p1000 /. 1000. in
      let suite = suite_of "dma" in
      let case = List.hd suite.Registry.fs_yes in
      let trials = 150 in
      let proto_st = Random.State.make [| 41; p1000 |] in
      let env =
        Plan.env Plan.Crash ~strength
          ~st:(Random.State.make [| 41; p1000; 1 |])
      in
      let hits = ref 0 in
      for _ = 1 to trials do
        let o =
          Plan.execute Plan.Reject_on_timeout (fun () ->
              case.Registry.fc_run proto_st env)
        in
        if o.Plan.accepted then incr hits
      done;
      let iv = Runtime.wilson ~hits:!hits ~trials () in
      iv.Runtime.lower <= 1. -. strength +. 1e-9
      && 1. -. strength <= iv.Runtime.upper +. 1e-9)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "faults"
    [
      ( "injector",
        [
          Alcotest.test_case "drop" `Quick test_deliver_drop;
          Alcotest.test_case "duplicate" `Quick test_deliver_duplicate;
          Alcotest.test_case "corrupt" `Quick test_deliver_corrupt;
          Alcotest.test_case "omit and babble" `Quick test_deliver_omit_babble;
          Alcotest.test_case "empty plan" `Quick test_perfect_plan_is_none;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "crash-stop" `Quick test_runtime_crash;
          Alcotest.test_case "fault-free stats" `Quick
            test_stats_without_faults;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "protocol error reported" `Quick
            test_execute_protocol_error;
          Alcotest.test_case "retry budget" `Quick test_execute_retry_budget;
        ] );
      ("wilson", [ Alcotest.test_case "interval sanity" `Quick test_wilson ]);
      ( "noise",
        [
          Alcotest.test_case "trajectories average to the channel" `Slow
            test_noise_matches_channel;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep JSON byte-identical" `Quick
            test_sweep_deterministic;
          Alcotest.test_case "faulty run reproducible" `Quick
            test_fault_plan_deterministic;
        ] );
      ( "invariants",
        qcheck
          [
            prop_soundness_contractive;
            prop_crash_of_leaf_neutral;
            prop_crash_completeness_tracks_prob;
          ] );
    ]
