(* Tests for the always-on verification service (lib/serve): the LRU
   cache, the request codec and canonical key, deterministic
   evaluation, and — via forked daemon processes — the wire protocol,
   session isolation, admission control, graceful drain and the
   end-to-end determinism digest. *)

module Lru = Qdp_serve.Lru
module Request = Qdp_serve.Request
module Eval = Qdp_serve.Eval
module Server = Qdp_serve.Server
module Client = Qdp_serve.Client
module Load = Qdp_serve.Load
module Registry = Qdp_core.Registry
module Frame = Qdp_dist.Frame

(* Populate the protocol registry (the CLI does this in its own
   startup; the daemon children forked below inherit it). *)
let () = Qdp_core.Protocols.init ()

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Lru --- *)

let test_lru_basic () =
  let t = Lru.create 3 in
  checki "empty" 0 (Lru.length t);
  checki "capacity" 3 (Lru.capacity t);
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "c" 3;
  checki "full" 3 (Lru.length t);
  check Alcotest.(option int) "find b" (Some 2) (Lru.find t "b");
  check Alcotest.(option int) "find absent" None (Lru.find t "zz");
  checki "hits" 1 (Lru.hits t);
  checki "misses" 1 (Lru.misses t)

let test_lru_eviction_order () =
  let t = Lru.create 3 in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "c" 3;
  (* Touch "a": it becomes most recent, so "b" is now oldest. *)
  ignore (Lru.find t "a");
  Lru.add t "d" 4;
  checki "still at capacity" 3 (Lru.length t);
  check Alcotest.(option int) "b evicted" None (Lru.find t "b");
  check Alcotest.(option int) "a survived" (Some 1) (Lru.find t "a");
  check Alcotest.(option int) "c survived" (Some 3) (Lru.find t "c");
  check Alcotest.(option int) "d present" (Some 4) (Lru.find t "d")

let test_lru_overwrite () =
  let t = Lru.create 2 in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "a" 10;
  checki "overwrite does not grow" 2 (Lru.length t);
  check Alcotest.(option int) "new value" (Some 10) (Lru.find t "a");
  (* Overwriting refreshed "a", so adding one more evicts "b". *)
  Lru.add t "c" 3;
  check Alcotest.(option int) "b evicted" None (Lru.find t "b");
  check
    Alcotest.(list string)
    "recency order" [ "c"; "a" ] (Lru.keys t)

let test_lru_capacity_one () =
  let t = Lru.create 1 in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  checki "length" 1 (Lru.length t);
  check Alcotest.(option int) "only b" (Some 2) (Lru.find t "b");
  check Alcotest.(option int) "a gone" None (Lru.find t "a");
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create 0))

(* --- Request codec --- *)

let some_protocol () =
  match Registry.ids () with
  | id :: _ -> id
  | [] -> Alcotest.fail "registry is empty"

let test_request_roundtrip_plain () =
  let id = some_protocol () in
  let spec = { Registry.default_spec with Registry.seed = 7; n = 32 } in
  let r = Request.make ~spec id in
  match Request.of_string (Request.to_json r) with
  | Error msg -> Alcotest.fail ("decode failed: " ^ msg)
  | Ok r' ->
      check Alcotest.string "same key" (Request.key r) (Request.key r');
      checkb "same record" true (r = r')

let test_request_roundtrip_faulted () =
  let id = some_protocol () in
  let fault =
    { Request.f_kind = "drop"; f_strength = 0.25; f_turn = Some 2; f_trials = 9 }
  in
  let r = Request.make ~fault id in
  match Request.of_string (Request.to_json r) with
  | Error msg -> Alcotest.fail ("decode failed: " ^ msg)
  | Ok r' -> checkb "faulted record round-trips" true (r = r')

let test_request_key_discriminates () =
  let id = some_protocol () in
  let base = Request.make id in
  let spec2 = { Registry.default_spec with Registry.seed = 99 } in
  let variants =
    [
      Request.make ~spec:spec2 id;
      Request.make
        ~fault:
          { Request.f_kind = "drop"; f_strength = 0.1; f_turn = None; f_trials = 5 }
        id;
    ]
  in
  List.iter
    (fun v -> checkb "distinct key" false (Request.key base = Request.key v))
    variants;
  check Alcotest.string "key is stable" (Request.key base)
    (Request.key (Request.make id))

let test_request_validation () =
  let expect_error what s =
    match Request.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": expected an error")
  in
  expect_error "not json" "{nope";
  expect_error "not an object" "[1,2]";
  expect_error "missing protocol" "{\"seed\": 3}";
  expect_error "non-string protocol" "{\"protocol\": 5}";
  expect_error "unknown fault kind"
    "{\"protocol\": \"eq\", \"fault\": {\"kind\": \"gremlins\"}}";
  expect_error "fault strength out of range"
    "{\"protocol\": \"eq\", \"fault\": {\"kind\": \"drop\", \"strength\": 1.5}}";
  expect_error "n out of range" "{\"protocol\": \"eq\", \"n\": 0}";
  expect_error "non-integer seed" "{\"protocol\": \"eq\", \"seed\": \"x\"}"

let test_request_defaults () =
  let id = some_protocol () in
  match Request.of_string (Printf.sprintf "{\"protocol\": %S}" id) with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      checkb "defaults to default_spec" true
        (r.Request.rq_spec = Registry.default_spec);
      checkb "no fault" true (r.Request.rq_fault = None)

(* --- Eval --- *)

let test_eval_deterministic () =
  let id = some_protocol () in
  let r = Request.make id in
  let a = Eval.run r and b = Eval.run r in
  (match (a, b) with
  | Ok x, Ok y -> check Alcotest.string "byte-identical responses" x y
  | _ -> Alcotest.fail "evaluation failed");
  match a with
  | Ok response ->
      (* The response is valid JSON advertising the protocol. *)
      let j = Qdp_obs.Json.parse response in
      checkb "has ok field" true
        (match Qdp_obs.Json.member "ok" j with
        | Some (Qdp_obs.Json.Bool _) -> true
        | _ -> false)
  | Error _ -> ()

let test_eval_unknown_protocol () =
  match Eval.run (Request.make "no-such-protocol") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for an unknown protocol"

let test_eval_run_string_garbage () =
  match Eval.run_string "]]][[" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

(* --- forked daemon harness --- *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Printf.sprintf "/tmp/qdp-test-serve-%d-%d.sock" (Unix.getpid ())
    !socket_counter

(* Forks a daemon child running [Server.run ~config] and hands the
   parent a connect-ready config; SIGTERMs and reaps the child on the
   way out.  Must run before any domain is spawned in this process
   (the serve tests therefore do not enable the worker pool). *)
let with_server ?(config = Server.default_config) f =
  let config = { config with Server.socket_path = fresh_socket () } in
  match Unix.fork () with
  | 0 ->
      (try Server.run ~config () with _ -> ());
      Unix._exit 0
  | pid ->
      let term_sent = ref false in
      let stop () =
        if not !term_sent then begin
          term_sent := true;
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
        end
      in
      Fun.protect
        ~finally:(fun () ->
          stop ();
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          try Unix.unlink config.Server.socket_path
          with Unix.Unix_error _ -> ())
      @@ fun () ->
      (* Wait for the daemon to bind. *)
      let rec connect tries =
        match Client.connect config.Server.socket_path with
        | c -> c
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
          when tries < 250 ->
            Unix.sleepf 0.02;
            connect (tries + 1)
      in
      let first = connect 0 in
      Fun.protect ~finally:(fun () -> Client.close first) @@ fun () ->
      f ~config ~first ~stop ~pid

let plain_request ?spec () = Request.make ?spec (some_protocol ())

let expect_reply what = function
  | `Reply (_, response) -> response
  | `Reject (_, reason) -> Alcotest.fail (what ^ ": rejected: " ^ reason)
  | `Eof -> Alcotest.fail (what ^ ": unexpected EOF")

let reason_kind reason =
  match Qdp_obs.Json.parse reason with
  | j -> (
      match Qdp_obs.Json.member "error" j with
      | Some (Qdp_obs.Json.String k) -> k
      | _ -> "?")
  | exception Qdp_obs.Json.Parse_error _ -> "?"

(* --- daemon behavior --- *)

let test_serve_roundtrip () =
  with_server @@ fun ~config:_ ~first ~stop:_ ~pid:_ ->
  let r = plain_request () in
  let response =
    expect_reply "rpc" (Client.rpc first ~id:41 (Request.to_json r))
  in
  (* The server's answer is exactly the direct evaluation. *)
  (match Eval.run r with
  | Ok direct -> check Alcotest.string "server == direct" direct response
  | Error msg -> Alcotest.fail msg);
  (* Correlation ids echo back. *)
  match Client.rpc first ~id:97 (Request.to_json r) with
  | `Reply (id, _) -> checki "id echoed" 97 id
  | _ -> Alcotest.fail "expected a reply"

let test_serve_cache_consistent () =
  with_server @@ fun ~config ~first ~stop:_ ~pid:_ ->
  let r = plain_request () in
  let payload = Request.to_json r in
  let one = expect_reply "first" (Client.rpc first ~id:1 payload) in
  let two = expect_reply "second (cached)" (Client.rpc first ~id:2 payload) in
  check Alcotest.string "cache serves identical bytes" one two;
  (* A second session sees the same shared cache entry. *)
  let other = Client.connect config.Server.socket_path in
  Fun.protect ~finally:(fun () -> Client.close other) @@ fun () ->
  let three = expect_reply "other session" (Client.rpc other ~id:3 payload) in
  check Alcotest.string "shared across sessions" one three

let test_serve_malformed_frame () =
  with_server @@ fun ~config ~first ~stop:_ ~pid:_ ->
  (* Garbage bytes: framing is lost, session is not. *)
  Client.send_raw first "this is definitely not a QDF1 frame";
  (match Client.next_event first with
  | `Reject (0, reason) ->
      check Alcotest.string "structured reject" "bad_frame" (reason_kind reason)
  | `Reject (id, _) -> Alcotest.failf "reject with id %d, wanted 0" id
  | `Reply _ -> Alcotest.fail "reply to garbage"
  | `Eof -> Alcotest.fail "server hung up");
  (* Same session keeps working after resync. *)
  let r = plain_request () in
  ignore (expect_reply "after garbage" (Client.rpc first ~id:5 (Request.to_json r)));
  (* A structurally valid frame of the wrong kind is also rejected
     without killing the session. *)
  Client.send_raw first (Frame.encode Frame.Stop);
  (match Client.next_event first with
  | `Reject (_, reason) ->
      check Alcotest.string "bad kind" "bad_request" (reason_kind reason)
  | _ -> Alcotest.fail "expected a reject for a Stop frame");
  ignore (expect_reply "still alive" (Client.rpc first ~id:6 (Request.to_json r)));
  (* An unparsable request payload gets a structured reject too. *)
  (match Client.rpc first ~id:7 "{not json" with
  | `Reject (7, reason) ->
      check Alcotest.string "bad payload" "bad_request" (reason_kind reason)
  | _ -> Alcotest.fail "expected a bad_request reject");
  (* And other sessions were never disturbed. *)
  let other = Client.connect config.Server.socket_path in
  Fun.protect ~finally:(fun () -> Client.close other) @@ fun () ->
  ignore (expect_reply "other session" (Client.rpc other ~id:8 (Request.to_json r)))

let test_serve_disconnect_frees_session () =
  with_server @@ fun ~config ~first ~stop:_ ~pid:_ ->
  (* Open a session, send half a frame, and vanish. *)
  let doomed = Client.connect config.Server.socket_path in
  let whole = Frame.encode (Frame.Request { id = 1; payload = "x" }) in
  Client.send_raw doomed (String.sub whole 0 (String.length whole / 2));
  Client.close doomed;
  (* The server frees the session and keeps serving. *)
  let r = plain_request () in
  ignore (expect_reply "after disconnect" (Client.rpc first ~id:9 (Request.to_json r)))

let test_serve_overload_reject () =
  let config =
    { Server.default_config with Server.queue_limit = 2; batch_max = 1 }
  in
  with_server ~config @@ fun ~config:_ ~first ~stop:_ ~pid:_ ->
  let r = plain_request () in
  let payload = Request.to_json r in
  let burst = 8 in
  for id = 1 to burst do
    Client.send first ~id payload
  done;
  let replies = ref 0 and overloads = ref 0 in
  for _ = 1 to burst do
    match Client.next_event first with
    | `Reply _ -> incr replies
    | `Reject (_, reason) when reason_kind reason = "overload" -> incr overloads
    | `Reject (_, reason) -> Alcotest.fail ("unexpected reject: " ^ reason)
    | `Eof -> Alcotest.fail "unexpected EOF"
  done;
  checkb "some requests served" true (!replies >= 1);
  checkb "some requests shed" true (!overloads >= 1);
  checki "every request answered" burst (!replies + !overloads);
  (* Backpressure is advisory: the session still works afterwards. *)
  ignore (expect_reply "after overload" (Client.rpc first ~id:99 payload))

let test_serve_drain_under_load () =
  let config = { Server.default_config with Server.batch_max = 1 } in
  with_server ~config @@ fun ~config:_ ~first ~stop ~pid ->
  let r = plain_request () in
  let payload = Request.to_json r in
  let burst = 4 in
  for id = 1 to burst do
    Client.send first ~id payload
  done;
  (* Once the first reply is back the server has read the burst; the
     pause lets any straggling bytes land before the drain signal. *)
  ignore (expect_reply "first of burst" (Client.next_event first));
  Unix.sleepf 0.05;
  stop ();
  (* Drain: every queued request still gets its response... *)
  for _ = 2 to burst do
    ignore (expect_reply "drained reply" (Client.next_event first))
  done;
  (* ...then the server hangs up and exits cleanly. *)
  (match Client.next_event first with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected EOF after drain");
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "server did not exit cleanly"

let test_serve_rejects_session_flood () =
  let config = { Server.default_config with Server.max_sessions = 1 } in
  with_server ~config @@ fun ~config ~first ~stop:_ ~pid:_ ->
  (* [first] holds the only slot; the next connection gets a
     structured overload reject and a hang-up. *)
  let extra = Client.connect config.Server.socket_path in
  Fun.protect ~finally:(fun () -> Client.close extra) @@ fun () ->
  (match Client.next_event extra with
  | `Reject (_, reason) ->
      check Alcotest.string "session-limit reject" "overload" (reason_kind reason)
  | `Reply _ -> Alcotest.fail "unexpected reply"
  | `Eof -> Alcotest.fail "hung up without the structured reject");
  (match Client.next_event extra with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected hang-up after reject");
  let r = plain_request () in
  ignore (expect_reply "first session unaffected" (Client.rpc first ~id:3 (Request.to_json r)))

(* --- end-to-end determinism --- *)

let test_load_digest_matches_direct () =
  with_server @@ fun ~config ~first:_ ~stop:_ ~pid:_ ->
  let lcfg =
    {
      Load.default_config with
      Load.socket = config.Server.socket_path;
      clients = 3;
      rps = 60.;
      duration = 1.0;
    }
  in
  let r = Load.run ~config:lcfg () in
  checkb "every send answered" true
    (r.Load.lr_replies + r.Load.lr_errors
     = r.Load.lr_sent - r.Load.lr_overloads);
  check Alcotest.string "server digest == direct digest"
    (Load.direct_digest ~config:lcfg ())
    r.Load.lr_digest;
  (* The report's JSON parses and carries the digest. *)
  let j = Qdp_obs.Json.parse (Load.to_json r) in
  match Qdp_obs.Json.member "verdict_digest" j with
  | Some (Qdp_obs.Json.String d) -> check Alcotest.string "json digest" r.Load.lr_digest d
  | _ -> Alcotest.fail "verdict_digest missing from report"

(* Pacing schedule under a stepped fake clock: the k-th request is
   admitted exactly when the clock reaches t_start + k/rps, the select
   timeout counts down to that same instant, and a stalled clock never
   admits a burst. *)
let test_load_pacing_stepped_clock () =
  let t = ref 1000. in
  Qdp_obs.Clock.set_source (Some (fun () -> !t));
  Fun.protect ~finally:(fun () -> Qdp_obs.Clock.set_source None)
  @@ fun () ->
  let t_start = Qdp_obs.Clock.now () in
  let rps = 8. in
  (* replay the paced loop's gate: step the clock 125 ms at a time
     (exactly representable, so slot times are exact) for one
     simulated second and count admissions *)
  let sent = ref 0 in
  for i = 0 to 8 do
    t := t_start +. (0.125 *. float_of_int i);
    while Load.send_due ~t_start ~rps ~sent:!sent ~now:(Qdp_obs.Clock.now ()) do
      incr sent
    done
  done;
  (* clock advanced 1 s past t_start: requests 0..8 are due (the k-th
     leaves at k/rps), the 9th is not *)
  checki "admissions track the schedule" 9 !sent;
  checkb "next send not yet due" false
    (Load.send_due ~t_start ~rps ~sent:!sent ~now:(Qdp_obs.Clock.now ()));
  (* the select timeout is the gap to that same slot *)
  check (Alcotest.float 1e-9) "timeout counts down to the next slot"
    (Load.next_send_at ~t_start ~rps ~sent:!sent -. Qdp_obs.Clock.now ())
    (Load.pace_timeout ~t_start ~rps ~sent:!sent ~now:(Qdp_obs.Clock.now ()));
  (* past-due slot clamps to zero rather than going negative *)
  check (Alcotest.float 0.) "overdue timeout clamps at zero" 0.
    (Load.pace_timeout ~t_start ~rps ~sent:0 ~now:(Qdp_obs.Clock.now ()));
  (* a stalled clock admits nothing further *)
  let before = !sent in
  for _ = 1 to 5 do
    if Load.send_due ~t_start ~rps ~sent:!sent ~now:(Qdp_obs.Clock.now ())
    then incr sent
  done;
  checki "stalled clock, no burst" before !sent

let test_load_digest_order_insensitive () =
  let pairs = [ ("k1", "v1"); ("k2", "v2"); ("k3", "v3") ] in
  let shuffled = [ ("k3", "v3"); ("k1", "v1"); ("k2", "v2"); ("k1", "v1") ] in
  check Alcotest.string "sorted set digest" (Load.digest pairs)
    (Load.digest shuffled);
  checkb "different responses change it" false
    (Load.digest pairs = Load.digest [ ("k1", "v1"); ("k2", "v2"); ("k3", "X") ])

let () =
  Alcotest.run "serve"
    [
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite;
          Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
        ] );
      ( "request",
        [
          Alcotest.test_case "round-trip plain" `Quick test_request_roundtrip_plain;
          Alcotest.test_case "round-trip faulted" `Quick
            test_request_roundtrip_faulted;
          Alcotest.test_case "key discriminates" `Quick
            test_request_key_discriminates;
          Alcotest.test_case "validation" `Quick test_request_validation;
          Alcotest.test_case "defaults" `Quick test_request_defaults;
        ] );
      ( "eval",
        [
          Alcotest.test_case "deterministic" `Quick test_eval_deterministic;
          Alcotest.test_case "unknown protocol" `Quick test_eval_unknown_protocol;
          Alcotest.test_case "garbage input" `Quick test_eval_run_string_garbage;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "round-trip" `Quick test_serve_roundtrip;
          Alcotest.test_case "cache consistency" `Quick test_serve_cache_consistent;
          Alcotest.test_case "malformed frames" `Quick test_serve_malformed_frame;
          Alcotest.test_case "disconnect frees session" `Quick
            test_serve_disconnect_frees_session;
          Alcotest.test_case "overload reject" `Quick test_serve_overload_reject;
          Alcotest.test_case "drain under load" `Quick test_serve_drain_under_load;
          Alcotest.test_case "session flood" `Quick test_serve_rejects_session_flood;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "load digest == direct" `Quick
            test_load_digest_matches_direct;
          Alcotest.test_case "digest order-insensitive" `Quick
            test_load_digest_order_insensitive;
          Alcotest.test_case "pacing under stepped clock" `Quick
            test_load_pacing_stepped_clock;
        ] );
    ]
