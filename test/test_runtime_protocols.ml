(* Tests for the message-passing protocol executions: GT over the
   runtime (index checks, convergence to the closed form), the
   classical dMA baseline, and the Stinespring dilation. *)

open Qdp_linalg
open Qdp_quantum
open Qdp_codes
open Qdp_core

let rng = Random.State.make [| 0x87f |]

let gt_yes_pair st n =
  let rec go () =
    let a = Gf2.random st n and b = Gf2.random st n in
    match Gf2.compare_big_endian a b with
    | 0 -> go ()
    | c -> if c > 0 then (a, b) else (b, a)
  in
  go ()

(* --- runtime GT --- *)

let test_runtime_gt_honest () =
  let n = 16 and r = 5 in
  let x, y = gt_yes_pair rng n in
  let params = Gt.make ~repetitions:1 ~seed:21 ~n ~r () in
  let st = Random.State.make [| 1 |] in
  let ok, stats = Runtime_gt.run_once st params x y (Runtime_gt.honest x y) in
  Alcotest.(check bool) "honest GT run accepts" true ok;
  Alcotest.(check int) "r messages" r stats.Qdp_network.Runtime.messages

let test_runtime_gt_converges () =
  let n = 12 and r = 4 in
  let x, y = gt_yes_pair rng n in
  (* swap roles: GT (y, x) = 0, attack with the witness-less best index *)
  let params = Gt.make ~repetitions:1 ~seed:22 ~n ~r () in
  (* choose a valid cheating index for inputs (y, x): y_i = 1, x_i = 0 *)
  let idx = ref (-1) in
  for i = n - 1 downto 0 do
    if Gf2.get y i && not (Gf2.get x i) then idx := i
  done;
  if !idx >= 0 then begin
    let prover =
      { Runtime_gt.node_index = (fun _ -> !idx); chain = Strategy.Geodesic }
    in
    let closed =
      Gt.single_round_accept params y x
        { Gt.index = !idx; eq_strategy = Strategy.Geodesic }
    in
    let st = Random.State.make [| 2 |] in
    let sampled =
      Runtime_gt.estimate_acceptance st ~trials:3000 params y x prover
    in
    Alcotest.(check bool)
      (Printf.sprintf "sampled %.3f vs closed %.3f" sampled closed)
      true
      (Float.abs (sampled -. closed) < 0.05)
  end

let test_runtime_gt_index_mismatch_caught () =
  let n = 16 and r = 5 in
  let params = Gt.make ~repetitions:1 ~seed:23 ~n ~r () in
  let x, y = gt_yes_pair rng n in
  let honest = Runtime_gt.honest x y in
  let i = honest.Runtime_gt.node_index 0 in
  (* a second index sent to half the nodes: the neighbour comparison
     catches the mismatch deterministically *)
  let other = if i + 1 < n then i + 1 else i - 1 in
  let prover =
    {
      Runtime_gt.node_index = (fun j -> if j <= r / 2 then i else other);
      chain = Strategy.All_left;
    }
  in
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 20 do
    let ok, _ = Runtime_gt.run_once st params x y prover in
    Alcotest.(check bool) "mismatched indices always rejected" false ok
  done

(* --- classical dMA baseline --- *)

let test_dma_honest_equal () =
  let n = 24 in
  let x = Gf2.random rng n in
  let ok, stats = Runtime_dma.run ~r:6 x (Gf2.copy x) (Runtime_dma.Honest x) in
  Alcotest.(check bool) "accepts equal inputs" true ok;
  (* every node tells both neighbours: 2 * r messages *)
  Alcotest.(check int) "messages" 12 stats.Qdp_network.Runtime.messages

let test_dma_detects_difference () =
  let n = 24 in
  let x = Gf2.random rng n in
  let y = Gf2.copy x in
  Gf2.set y 3 (not (Gf2.get y 3));
  (* whatever single string the prover writes, an end node rejects *)
  List.iter
    (fun z ->
      let ok, _ = Runtime_dma.run ~r:6 x y (Runtime_dma.Honest z) in
      Alcotest.(check bool) "rejected" false ok)
    [ x; y ];
  (* and a split assignment is caught by a neighbour comparison *)
  let split = Array.init 7 (fun j -> if j < 3 then x else y) in
  let ok, _ = Runtime_dma.run ~r:6 x y (Runtime_dma.Assignment split) in
  Alcotest.(check bool) "split caught" false ok

let test_dma_cost () =
  Alcotest.(check int) "n bits per node" 128 (Runtime_dma.bits_per_node ~n:128)

(* --- randomized proof-labeling scheme --- *)

let test_rpls_honest () =
  let params = { Rpls.n = 32; r = 6; parity_checks = 4 } in
  let x = Gf2.random rng 32 in
  Alcotest.(check (float 1e-12)) "honest exact" 1.
    (Rpls.accept_probability params x (Gf2.copy x) (Rpls.Write x));
  let st = Random.State.make [| 7 |] in
  let ok, stats = Rpls.run_once st params x (Gf2.copy x) (Rpls.Write x) in
  Alcotest.(check bool) "honest sampled run accepts" true ok;
  Alcotest.(check int) "2r messages" 12 stats.Qdp_network.Runtime.messages

let test_rpls_mismatch_probability () =
  let params = { Rpls.n = 32; r = 6; parity_checks = 3 } in
  let x = Gf2.random rng 32 in
  let y =
    let z = Gf2.copy x in
    Gf2.set z 5 (not (Gf2.get z 5));
    z
  in
  (* split assignment: one differing edge survives with prob 2^-3 *)
  let split = Array.init 7 (fun j -> if j < 3 then x else y) in
  Alcotest.(check (float 1e-12)) "one bad edge" 0.125
    (Rpls.accept_probability params x y (Rpls.Write_each split));
  (* sampled frequency agrees *)
  let st = Random.State.make [| 8 |] in
  let hits = ref 0 in
  let trials = 4000 in
  for _ = 1 to trials do
    if fst (Rpls.run_once st params x y (Rpls.Write_each split)) then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %.3f near 0.125" freq)
    true
    (Float.abs (freq -. 0.125) < 0.03)

let test_rpls_end_checks () =
  let params = { Rpls.n = 16; r = 4; parity_checks = 2 } in
  let x = Gf2.random rng 16 in
  let y =
    let z = Gf2.copy x in
    Gf2.set z 0 (not (Gf2.get z 0));
    z
  in
  (* writing x everywhere on input (x, y): v_r rejects deterministically *)
  Alcotest.(check (float 1e-12)) "end check" 0.
    (Rpls.accept_probability params x y (Rpls.Write x))

let test_rpls_communication_savings () =
  let c = Rpls.costs { Rpls.n = 1024; r = 8; parity_checks = 5 } in
  Alcotest.(check int) "proof stays n" 1024 c.Report.local_proof_qubits;
  Alcotest.(check int) "messages shrink to 2 ell" 10 c.Report.local_message_qubits

(* --- Stinespring --- *)

let test_stinespring_isometry () =
  let ch = Channel.dephase 3 in
  let v = Channel.stinespring ch in
  (* V^dagger V = I *)
  Alcotest.(check bool) "isometry" true
    (Mat.equal ~eps:1e-9 (Mat.mul (Mat.adjoint v) v) (Mat.identity 3))

let test_stinespring_reproduces_channel () =
  let ch = Channel.symmetrization 2 in
  let v = Channel.stinespring ch in
  let n_env = List.length (Channel.kraus ch) in
  let st = Random.State.make [| 4 |] in
  let gaussian () =
    let u1 = Float.max 1e-12 (Random.State.float st 1.) in
    let u2 = Random.State.float st 1. in
    Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  let psi =
    Vec.normalize (Vec.init 4 (fun _ -> Cx.make (gaussian ()) (gaussian ())))
  in
  let dilated = Mat.apply v psi in
  (* trace out the environment (last factor of size n_env) *)
  let rho_out =
    Density.partial_trace
      (Density.of_pure ~dims:[| 4; n_env |] dilated)
      ~keep:[ 0 ]
  in
  let direct = Channel.apply ch (Mat.of_vec psi) in
  Alcotest.(check bool) "tr_E (V rho V^+) = channel" true
    (Mat.equal ~eps:1e-8 (Density.mat rho_out) direct)

let () =
  Alcotest.run "runtime_protocols"
    [
      ( "runtime_gt",
        [
          Alcotest.test_case "honest run" `Quick test_runtime_gt_honest;
          Alcotest.test_case "converges" `Quick test_runtime_gt_converges;
          Alcotest.test_case "index mismatch caught" `Quick
            test_runtime_gt_index_mismatch_caught;
        ] );
      ( "runtime_dma",
        [
          Alcotest.test_case "honest equal" `Quick test_dma_honest_equal;
          Alcotest.test_case "detects difference" `Quick test_dma_detects_difference;
          Alcotest.test_case "cost" `Quick test_dma_cost;
        ] );
      ( "rpls",
        [
          Alcotest.test_case "honest" `Quick test_rpls_honest;
          Alcotest.test_case "mismatch probability" `Quick
            test_rpls_mismatch_probability;
          Alcotest.test_case "end checks" `Quick test_rpls_end_checks;
          Alcotest.test_case "communication savings" `Quick
            test_rpls_communication_savings;
        ] );
      ( "stinespring",
        [
          Alcotest.test_case "isometry" `Quick test_stinespring_isometry;
          Alcotest.test_case "reproduces channel" `Quick
            test_stinespring_reproduces_channel;
        ] );
    ]
