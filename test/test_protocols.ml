(* End-to-end tests of the paper's protocols: completeness, soundness
   against the attack libraries, cost accounting, and agreement between
   the closed-form engines and the sampled runtime execution. *)

open Qdp_codes
open Qdp_network
open Qdp_commcc
open Qdp_core

let rng = Random.State.make [| 0x9047 |]

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let distinct_pair st n =
  let x = Gf2.random st n in
  let rec other () =
    let y = Gf2.random st n in
    if Gf2.equal x y then other () else y
  in
  (x, other ())

(* --- EQ on a path (Theorem 19 / Section 3.2) --- *)

let test_eq_path_perfect_completeness () =
  for r = 1 to 8 do
    let p = Eq_path.make ~repetitions:3 ~seed:1 ~n:32 ~r () in
    let x = Gf2.random rng 32 in
    check_float ~eps:1e-12
      (Printf.sprintf "r=%d" r)
      1.
      (Eq_path.accept p x (Gf2.copy x) Strategy.Honest)
  done

let test_eq_path_soundness_bound () =
  (* every attack stays below the Lemma 17 single-round bound *)
  for r = 2 to 10 do
    let p = Eq_path.make ~repetitions:1 ~seed:2 ~n:32 ~r () in
    let x, y = distinct_pair rng 32 in
    let best, _ = Eq_path.best_attack_accept p x y in
    let bound = Eq_path.soundness_bound_single ~r in
    Alcotest.(check bool)
      (Printf.sprintf "r=%d attack %.5f <= bound %.5f" r best bound)
      true (best <= bound +. 1e-9)
  done

let test_eq_path_repetition_kills_attacks () =
  let r = 5 in
  let p = Eq_path.make ~seed:3 ~n:32 ~r () in
  let x, y = distinct_pair rng 32 in
  let single, name = Eq_path.best_attack_accept p x y in
  let amplified = Sim.repeat_accept p.Eq_path.repetitions single in
  Alcotest.(check bool)
    (Printf.sprintf "%s amplifies to %.2e < 1/3" name amplified)
    true (amplified < 1. /. 3.)

let test_eq_path_interpolation_scaling () =
  (* the geodesic attack's rejection probability shrinks as Theta(1/r):
     rejection(2r) should be roughly half of rejection(r) *)
  let x, y = distinct_pair rng 64 in
  let reject r =
    let p = Eq_path.make ~repetitions:1 ~seed:4 ~n:64 ~r () in
    1. -. Eq_path.single_round_accept p x y Strategy.Geodesic
  in
  let r8 = reject 8 and r16 = reject 16 in
  let ratio = r8 /. r16 in
  Alcotest.(check bool)
    (Printf.sprintf "rejection ratio %.3f in [1.5, 2.5]" ratio)
    true
    (ratio > 1.5 && ratio < 2.5)

let test_fgnp_forwarding_variant () =
  (* completeness stays perfect; the per-round attack is strictly
     stronger (soundness weaker) than with the symmetrization step *)
  let n = 32 and r = 6 in
  let p = Eq_path.make ~repetitions:1 ~seed:44 ~n ~r () in
  let x, y = distinct_pair rng n in
  Alcotest.(check (float 1e-12)) "forwarding completeness" 1.
    (Eq_path.fgnp_forwarding_accept p x (Gf2.copy x) Strategy.Honest);
  let sym_attack, _ = Eq_path.best_attack_accept p x y in
  let fwd_attack =
    List.fold_left
      (fun best (_, s) -> Float.max best (Eq_path.fgnp_forwarding_accept p x y s))
      0.
      (Eq_path.attack_library p x y)
  in
  Alcotest.(check bool)
    (Printf.sprintf "forwarding attack %.4f >= symmetrized %.4f" fwd_attack
       sym_attack)
    true
    (fwd_attack >= sym_attack -. 1e-9);
  (* but the proof is half the registers *)
  Alcotest.(check int) "half the registers"
    ((Eq_path.costs p).Report.local_proof_qubits / 2)
    (Eq_path.fgnp_costs p).Report.local_proof_qubits

let test_eq_path_costs () =
  let p = Eq_path.make ~repetitions:10 ~seed:5 ~n:32 ~r:6 () in
  let c = Eq_path.costs p in
  let q = Eq_path.fingerprint_qubits p in
  Alcotest.(check int) "local proof 2kq" (2 * 10 * q) c.Report.local_proof_qubits;
  Alcotest.(check int) "total proof (r-1)2kq" (5 * 2 * 10 * q)
    c.Report.total_proof_qubits;
  Alcotest.(check int) "1 round" 1 c.Report.rounds

let test_eq_path_paper_repetitions () =
  Alcotest.(check int) "k(2)" 162 (Eq_path.paper_repetitions ~r:2);
  Alcotest.(check int) "k(10)" 4050 (Eq_path.paper_repetitions ~r:10)

(* --- EQ on trees (Theorem 19) --- *)

let test_eq_tree_completeness_star () =
  let g = Graph.star 5 in
  let p = Eq_tree.make ~repetitions:2 ~seed:6 ~n:24 ~r:2 () in
  let x = Gf2.random rng 24 in
  let inputs = Array.make 5 (Gf2.copy x) in
  check_float ~eps:1e-12 "star completeness" 1.
    (Eq_tree.accept p g ~terminals:[ 1; 2; 3; 4; 5 ] ~inputs Eq_tree.Honest)

let test_eq_tree_completeness_random_graph () =
  let st = Random.State.make [| 0x33 |] in
  let g = Graph.random_connected st ~n:20 ~extra_edges:6 in
  let p = Eq_tree.make ~repetitions:2 ~seed:7 ~n:16 ~r:6 () in
  let x = Gf2.random rng 16 in
  let terminals = [ 0; 5; 11; 19 ] in
  let inputs = Array.make 4 (Gf2.copy x) in
  check_float ~eps:1e-12 "random graph completeness" 1.
    (Eq_tree.accept p g ~terminals ~inputs Eq_tree.Honest)

let test_eq_tree_soundness () =
  let g = Graph.balanced_tree ~arity:2 ~depth:3 in
  let terminals = [ 7; 8; 11; 14 ] in
  let p = Eq_tree.make ~repetitions:1 ~seed:8 ~n:24 ~r:6 () in
  let x, y = distinct_pair rng 24 in
  let inputs = [| Gf2.copy x; Gf2.copy x; y; Gf2.copy x |] in
  let best, name = Eq_tree.best_attack_accept p g ~terminals ~inputs in
  Alcotest.(check bool)
    (Printf.sprintf "best tree attack %.4f (%s) < 1" best name)
    true (best < 0.9999);
  let k = Eq_path.paper_repetitions ~r:6 in
  Alcotest.(check bool) "amplified < 1/3" true
    (Sim.repeat_accept k best < 1. /. 3.)

let test_eq_tree_permutation_vs_fgnp () =
  (* the FGNP21 random-child variant is weaker per round on a star with
     many children: its acceptance on a bad input is higher *)
  let g = Graph.star 5 in
  let terminals = [ 1; 2; 3; 4; 5 ] in
  let x, y = distinct_pair rng 24 in
  let inputs = [| Gf2.copy x; Gf2.copy x; Gf2.copy x; Gf2.copy x; y |] in
  let accept variant =
    let p =
      Eq_tree.make ~repetitions:1 ~use_permutation_test:variant ~seed:9 ~n:24
        ~r:2 ()
    in
    fst (Eq_tree.best_attack_accept p g ~terminals ~inputs)
  in
  let perm = accept true and fgnp = accept false in
  Alcotest.(check bool)
    (Printf.sprintf "perm test %.4f <= fgnp %.4f" perm fgnp)
    true (perm <= fgnp +. 1e-9)

let test_eq_tree_costs_independent_of_t () =
  (* Theorem 19's point: local proof size does not grow with t *)
  let p = Eq_tree.make ~repetitions:5 ~seed:10 ~n:32 ~r:3 () in
  let cost_for t =
    let g = Graph.star t in
    let tr = Eq_tree.tree_of g ~terminals:(List.init t (fun i -> i + 1)) in
    (Eq_tree.costs p tr).Report.local_proof_qubits
  in
  let c3 = cost_for 3 and c6 = cost_for 6 in
  (* only the certificate bits (log of graph size) may differ *)
  Alcotest.(check bool)
    (Printf.sprintf "local cost %d vs %d nearly equal" c3 c6)
    true
    (abs (c6 - c3) <= 2)

(* --- GT (Theorem 26) --- *)

let test_gt_completeness () =
  for trial = 0 to 9 do
    let st = Random.State.make [| trial; 0x6f |] in
    let x = Gf2.random st 16 and y = Gf2.random st 16 in
    if Gf2.compare_big_endian x y > 0 then begin
      let p = Gt.make ~repetitions:2 ~seed:11 ~n:16 ~r:4 () in
      check_float ~eps:1e-12 "GT completeness" 1.
        (Gt.accept p x y (Gt.honest_prover x y))
    end
  done

let test_gt_soundness () =
  for trial = 0 to 4 do
    let st = Random.State.make [| trial; 0x70 |] in
    let a = Gf2.random st 12 and b = Gf2.random st 12 in
    let x, y =
      if Gf2.compare_big_endian a b <= 0 then (a, b) else (b, a)
    in
    (* GT (x, y) = 0 *)
    let p = Gt.make ~repetitions:1 ~seed:12 ~n:12 ~r:4 () in
    let best, name = Gt.best_attack_accept p x y in
    Alcotest.(check bool)
      (Printf.sprintf "GT attack %.4f (%s)" best name)
      true
      (best <= Eq_path.soundness_bound_single ~r:4 +. 1e-9)
  done

let test_gt_equal_inputs_rejected () =
  let x = Gf2.random rng 12 in
  let p = Gt.make ~repetitions:1 ~seed:13 ~n:12 ~r:3 () in
  let best, _ = Gt.best_attack_accept p x (Gf2.copy x) in
  (* on x = y every index i has x_i = y_i, so the end checks kill every
     committed index *)
  check_float ~eps:1e-12 "x = y unprovable" 0. best

let test_gt_variants () =
  let x = Gf2.of_int ~width:8 200 and y = Gf2.of_int ~width:8 77 in
  let p = Gt.make ~repetitions:2 ~seed:14 ~n:8 ~r:3 () in
  check_float ~eps:1e-9 "Gt yes" 1. (Gt.variant_honest_accept p Gt.Gt x y);
  check_float ~eps:1e-9 "Ge yes" 1. (Gt.variant_honest_accept p Gt.Ge x y);
  check_float ~eps:1e-9 "Lt yes (swapped)" 1. (Gt.variant_honest_accept p Gt.Lt y x);
  check_float ~eps:1e-9 "Le on equal" 1.
    (Gt.variant_honest_accept p Gt.Le x (Gf2.copy x));
  (* no instances *)
  let atk = Gt.variant_best_attack p Gt.Gt y x in
  Alcotest.(check bool) "Gt no-instance attack bounded" true
    (atk <= Eq_path.soundness_bound_single ~r:3 +. 1e-9)

let test_gt_costs_logarithmic () =
  let c n =
    (Gt.costs (Gt.make ~repetitions:1 ~seed:15 ~n ~r:4 ())).Report
    .local_proof_qubits
  in
  (* 16x input growth: cost grows by an additive O(1) qubits *)
  Alcotest.(check bool) "log growth" true (c 256 - c 16 <= 15)

(* --- RV (Theorem 29) --- *)

let test_rv_value () =
  let inputs = [| Gf2.of_int ~width:4 9; Gf2.of_int ~width:4 3; Gf2.of_int ~width:4 12 |] in
  Alcotest.(check bool) "x0 is 2nd largest" true (Rv.rv_value ~inputs ~i:0 ~j:2);
  Alcotest.(check bool) "x2 is largest" true (Rv.rv_value ~inputs ~i:2 ~j:1);
  Alcotest.(check bool) "x1 is smallest" true (Rv.rv_value ~inputs ~i:1 ~j:3);
  Alcotest.(check bool) "x0 is not largest" false (Rv.rv_value ~inputs ~i:0 ~j:1)

let test_rv_completeness () =
  let g = Graph.star 4 in
  let terminals = [ 1; 2; 3; 4 ] in
  let inputs =
    [| Gf2.of_int ~width:8 40; Gf2.of_int ~width:8 200; Gf2.of_int ~width:8 10;
       Gf2.of_int ~width:8 90 |]
  in
  let p = Rv.make ~repetitions:2 ~seed:16 ~n:8 ~r:2 () in
  (* terminal 1 holds 200: the largest *)
  check_float ~eps:1e-9 "rank 1 verified" 1.
    (Rv.honest_accept p g ~terminals ~inputs ~i:1 ~j:1);
  check_float ~eps:1e-9 "rank 3 of terminal 3" 1.
    (Rv.honest_accept p g ~terminals ~inputs ~i:3 ~j:2)

let test_rv_honest_rejects_wrong_rank () =
  let g = Graph.star 3 in
  let terminals = [ 1; 2; 3 ] in
  let inputs =
    [| Gf2.of_int ~width:8 5; Gf2.of_int ~width:8 100; Gf2.of_int ~width:8 60 |]
  in
  let p = Rv.make ~repetitions:1 ~seed:17 ~n:8 ~r:2 () in
  check_float ~eps:1e-12 "wrong rank count-rejected" 0.
    (Rv.honest_accept p g ~terminals ~inputs ~i:0 ~j:1)

let test_rv_soundness () =
  let g = Graph.star 3 in
  let terminals = [ 1; 2; 3 ] in
  let inputs =
    [| Gf2.of_int ~width:8 5; Gf2.of_int ~width:8 100; Gf2.of_int ~width:8 60 |]
  in
  let p = Rv.make ~repetitions:1 ~seed:18 ~n:8 ~r:2 () in
  (* claiming terminal 0 (value 5) is the largest requires lying on two
     GT paths *)
  let best, name = Rv.best_attack_accept p g ~terminals ~inputs ~i:0 ~j:1 in
  Alcotest.(check bool)
    (Printf.sprintf "rv attack %.4f (%s) < 1" best name)
    true (best < 0.9999)

(* --- relay protocol (Theorem 22) --- *)

let test_relay_completeness () =
  let p = Relay.make ~inner_repetitions:2 ~seed:19 ~n:27 ~r:12 () in
  let x = Gf2.random rng 27 in
  check_float ~eps:1e-12 "relay completeness" 1.
    (Relay.accept p x (Gf2.copy x) (Relay.honest_prover p x))

let test_relay_positions () =
  let p = Relay.make ~spacing:3 ~seed:20 ~n:27 ~r:10 () in
  Alcotest.(check (list int)) "positions" [ 3; 6; 9 ] (Relay.relay_positions p)

let test_relay_soundness () =
  let p = Relay.make ~seed:21 ~n:27 ~r:12 () in
  let x, y = distinct_pair rng 27 in
  let best, name = Relay.best_attack_accept p x y in
  Alcotest.(check bool)
    (Printf.sprintf "relay attack %.4f (%s) < 1/3" best name)
    true (best < 1. /. 3.)

let test_relay_total_cost_beats_classical () =
  (* Theorem 22 vs Corollary 25: the quantum total grows like n^{2/3}
     in n while the classical lower bound grows linearly, so scaling
     the input by 8 must grow the quantum total by well under 8x *)
  let r = 64 in
  let total n =
    float_of_int
      (Relay.costs (Relay.make ~seed:22 ~n ~r ())).Report.total_proof_qubits
  in
  let ratio = total 4096 /. total 512 in
  Alcotest.(check bool)
    (Printf.sprintf "growth ratio %.2f well below linear 8x" ratio)
    true (ratio < 6.)

(* --- one-way compiler (Theorems 30/32) --- *)

let test_compiler_ham_completeness () =
  let n = 48 and d = 2 in
  let proto = Oneway.ham ~seed:23 ~n ~d in
  let g = Graph.star 3 in
  let terminals = [ 1; 2; 3 ] in
  let params = Oneway_compiler.make ~repetitions:1 ~amplification:1 ~r:2 ~t:3 ~n () in
  let st = Random.State.make [| 0x77 |] in
  let x = Gf2.random st n in
  let inputs =
    Array.init 3 (fun i ->
        if i = 0 then Gf2.copy x else Gf2.xor x (Gf2.random_weight st n 1))
  in
  (* pairwise distance <= 2 = d: a yes instance *)
  Alcotest.(check bool) "yes instance" true
    (Problems.forall_t (Problems.ham ~d n) inputs);
  let p =
    Oneway_compiler.single_accept params proto g ~terminals ~inputs
      Oneway_compiler.Honest
  in
  check_float ~eps:1e-9 "block protocol is one-sided: completeness 1" 1. p

let test_compiler_ham_soundness () =
  let n = 48 and d = 2 in
  let proto = Oneway.repeat 5 (Oneway.ham ~seed:24 ~n ~d) in
  let g = Graph.star 3 in
  let terminals = [ 1; 2; 3 ] in
  let params = Oneway_compiler.make ~repetitions:1 ~amplification:1 ~r:2 ~t:3 ~n () in
  let st = Random.State.make [| 0x78 |] in
  let x = Gf2.random st n in
  let far = Gf2.xor x (Gf2.random_weight st n (8 * d)) in
  let inputs = [| Gf2.copy x; Gf2.copy x; far |] in
  let best, name = Oneway_compiler.best_attack_accept params proto g ~terminals ~inputs in
  Alcotest.(check bool)
    (Printf.sprintf "compiler attack %.4f (%s) < 0.75" best name)
    true (best < 0.75)

let test_compiler_eq_matches_tree_shape () =
  (* compiling the EQ one-way protocol yields another EQ verifier *)
  let n = 24 in
  let proto = Oneway.eq ~seed:25 ~n in
  let g = Graph.path 4 in
  let terminals = [ 0; 4 ] in
  let params = Oneway_compiler.make ~repetitions:1 ~amplification:1 ~r:4 ~t:2 ~n () in
  let x = Gf2.random rng n in
  let inputs = [| Gf2.copy x; Gf2.copy x |] in
  check_float ~eps:1e-9 "EQ compiled completeness" 1.
    (Oneway_compiler.single_accept params proto g ~terminals ~inputs
       Oneway_compiler.Honest);
  let x', y' = distinct_pair rng n in
  let best, _ =
    Oneway_compiler.best_attack_accept params proto g ~terminals
      ~inputs:[| x'; y' |]
  in
  Alcotest.(check bool) "EQ compiled soundness" true (best < 0.999)

let test_compiler_costs_scaling () =
  let n = 32 in
  let proto = Oneway.ham ~seed:26 ~n ~d:1 in
  let g = Graph.star 4 in
  let terminals = [ 1; 2; 3; 4 ] in
  let params = Oneway_compiler.make ~r:1 ~t:4 ~n () in
  let c = Oneway_compiler.costs params proto g ~terminals in
  Alcotest.(check bool) "total >= local" true
    (c.Report.total_proof_qubits >= c.Report.local_proof_qubits);
  Alcotest.(check int) "1 round" 1 c.Report.rounds

(* --- QMA compiler / LSD pipeline (Theorems 42/46) --- *)

let test_lsd_pipeline_close () =
  let st = Random.State.make [| 0x79 |] in
  let inst = Lsd.random_close st ~ambient:64 ~dim:2 in
  let params = Qmacc_compiler.make ~repetitions:1 ~r:4 () in
  let honest, _ = Qmacc_compiler.run_lsd_pipeline params ~ambient:64 ~inst in
  Alcotest.(check bool)
    (Printf.sprintf "close honest %.4f >= 0.9" honest)
    true (honest >= 0.9)

let test_lsd_pipeline_far () =
  let st = Random.State.make [| 0x80 |] in
  let inst = Lsd.random_far st ~ambient:256 ~dim:2 in
  let params = Qmacc_compiler.make ~repetitions:1 ~r:4 () in
  let honest, best = Qmacc_compiler.run_lsd_pipeline params ~ambient:256 ~inst in
  Alcotest.(check bool)
    (Printf.sprintf "far honest %.4f, best %.4f <= 0.05" honest best)
    true
    (honest <= 0.05 && best <= 0.05)

let test_qmacc_costs () =
  let proto = Qma_comm.lsd_oneway ~ambient:128 in
  let params = Qmacc_compiler.make ~repetitions:2 ~r:5 () in
  let c = Qmacc_compiler.costs params proto in
  Alcotest.(check int) "local proof 2k(gamma+mu)" (2 * 2 * 14)
    c.Report.local_proof_qubits;
  Alcotest.(check int) "v_0 proof + intermediates"
    ((2 * 7) + (4 * 2 * 2 * 14))
    c.Report.total_proof_qubits

let test_node_splitting_reduction () =
  let pc =
    Qma_star_reduction.uniform ~r:6 ~intermediate_proof:10 ~end_proof:0
      ~edge_message:4
  in
  let cut, costs = Qma_star_reduction.best_cut pc in
  Alcotest.(check bool) "cut in range" true (cut >= 0 && cut < 6);
  Alcotest.(check int) "total proof split" 50
    (costs.Qma_comm.proof_alice + costs.Qma_comm.proof_bob);
  Alcotest.(check int) "communication = edge" 4 costs.Qma_comm.communication;
  Alcotest.(check int) "QMA* total" 54 (Qma_comm.star_total costs)

(* --- runtime execution agrees with the closed form --- *)

let test_runtime_matches_closed_form () =
  let params = { Runtime_eq.n = 16; r = 4; seed = 27; repetitions = 1 } in
  let closed_params = Eq_path.make ~repetitions:1 ~seed:27 ~n:16 ~r:4 () in
  let x, y = distinct_pair rng 16 in
  let closed =
    Eq_path.single_round_accept closed_params x y (Strategy.Constant x)
  in
  let st = Random.State.make [| 0x81 |] in
  let sampled =
    Runtime_eq.estimate_acceptance st ~trials:3000 params x y Strategy.All_left
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %.3f vs closed %.3f" sampled closed)
    true
    (Float.abs (sampled -. closed) < 0.05)

let test_runtime_honest () =
  let params = { Runtime_eq.n = 16; r = 5; seed = 28; repetitions = 1 } in
  let x = Gf2.random rng 16 in
  let st = Random.State.make [| 0x82 |] in
  let ok, stats = Runtime_eq.run_once st params x (Gf2.copy x) Strategy.All_left in
  Alcotest.(check bool) "honest run accepts" true ok;
  Alcotest.(check int) "r messages" 5 stats.Runtime.messages

let () =
  Alcotest.run "protocols"
    [
      ( "eq_path",
        [
          Alcotest.test_case "perfect completeness" `Quick
            test_eq_path_perfect_completeness;
          Alcotest.test_case "soundness bound" `Quick test_eq_path_soundness_bound;
          Alcotest.test_case "repetition amplifies" `Quick
            test_eq_path_repetition_kills_attacks;
          Alcotest.test_case "interpolation 1/r scaling" `Quick
            test_eq_path_interpolation_scaling;
          Alcotest.test_case "FGNP21 forwarding ablation" `Quick
            test_fgnp_forwarding_variant;
          Alcotest.test_case "cost accounting" `Quick test_eq_path_costs;
          Alcotest.test_case "paper repetitions" `Quick
            test_eq_path_paper_repetitions;
        ] );
      ( "eq_tree",
        [
          Alcotest.test_case "star completeness" `Quick
            test_eq_tree_completeness_star;
          Alcotest.test_case "random graph completeness" `Quick
            test_eq_tree_completeness_random_graph;
          Alcotest.test_case "soundness" `Quick test_eq_tree_soundness;
          Alcotest.test_case "permutation vs FGNP21" `Quick
            test_eq_tree_permutation_vs_fgnp;
          Alcotest.test_case "cost independent of t" `Quick
            test_eq_tree_costs_independent_of_t;
        ] );
      ( "gt",
        [
          Alcotest.test_case "completeness" `Quick test_gt_completeness;
          Alcotest.test_case "soundness" `Quick test_gt_soundness;
          Alcotest.test_case "equal inputs" `Quick test_gt_equal_inputs_rejected;
          Alcotest.test_case "variants" `Quick test_gt_variants;
          Alcotest.test_case "log cost" `Quick test_gt_costs_logarithmic;
        ] );
      ( "rv",
        [
          Alcotest.test_case "predicate" `Quick test_rv_value;
          Alcotest.test_case "completeness" `Quick test_rv_completeness;
          Alcotest.test_case "count check" `Quick test_rv_honest_rejects_wrong_rank;
          Alcotest.test_case "soundness" `Quick test_rv_soundness;
        ] );
      ( "relay",
        [
          Alcotest.test_case "completeness" `Quick test_relay_completeness;
          Alcotest.test_case "positions" `Quick test_relay_positions;
          Alcotest.test_case "soundness" `Quick test_relay_soundness;
          Alcotest.test_case "beats classical total" `Quick
            test_relay_total_cost_beats_classical;
        ] );
      ( "oneway_compiler",
        [
          Alcotest.test_case "HAM completeness" `Quick
            test_compiler_ham_completeness;
          Alcotest.test_case "HAM soundness" `Quick test_compiler_ham_soundness;
          Alcotest.test_case "EQ compiled" `Quick test_compiler_eq_matches_tree_shape;
          Alcotest.test_case "costs" `Quick test_compiler_costs_scaling;
        ] );
      ( "qmacc",
        [
          Alcotest.test_case "LSD pipeline close" `Quick test_lsd_pipeline_close;
          Alcotest.test_case "LSD pipeline far" `Quick test_lsd_pipeline_far;
          Alcotest.test_case "costs" `Quick test_qmacc_costs;
          Alcotest.test_case "node splitting" `Quick test_node_splitting_reduction;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "matches closed form" `Quick
            test_runtime_matches_closed_form;
          Alcotest.test_case "honest run" `Quick test_runtime_honest;
        ] );
    ]
