(* Tests for the Qdp_par domain pool: scheduling semantics (coverage,
   exception propagation, nesting, jobs=1 equivalence), the
   deterministic split-RNG Monte-Carlo contract (jobs=1 vs jobs=4
   byte-identity of acceptance estimates, fault-sweep curves and
   cross-validation verdicts), and concurrent hammering of the
   Fingerprint memo from 4 domains. *)

module Par = Qdp_par

let () = Qdp_core.Protocols.init ()

(* These tests exercise real pool semantics (spawning, helping,
   nesting) at jobs=4 regardless of host core count, so disable the
   effective-jobs oversubscription clamp. *)
let () = Par.set_oversubscribe true

let with_jobs n f =
  let old = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs old) f

(* --- pool semantics --- *)

let test_for_covers () =
  with_jobs 4 (fun () ->
      let hits = Array.make 1000 0 in
      Par.parallel_for 0 1000 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        "each index ran exactly once" true
        (Array.for_all (( = ) 1) hits);
      Par.parallel_for 7 3 (fun _ -> Alcotest.fail "empty range ran");
      let sum = Atomic.make 0 in
      Par.parallel_for ~chunk:3 0 100 (fun i ->
          ignore (Atomic.fetch_and_add sum i));
      Alcotest.(check int) "custom chunk covers" 4950 (Atomic.get sum))

let test_map () =
  with_jobs 4 (fun () ->
      let arr = Array.init 257 (fun i -> i) in
      let doubled = Par.parallel_map_array (fun x -> (2 * x) + 1) arr in
      Alcotest.(check (array int))
        "map matches sequential"
        (Array.map (fun x -> (2 * x) + 1) arr)
        doubled;
      Alcotest.(check (array int))
        "empty array" [||]
        (Par.parallel_map_array (fun x -> x) [||]))

let test_reduce () =
  with_jobs 4 (fun () ->
      let total =
        Par.parallel_reduce ~neutral:0 ~combine:( + ) 0 1001 (fun i -> i)
      in
      Alcotest.(check int) "sum 0..1000" 500500 total;
      let best =
        Par.parallel_reduce ~neutral:neg_infinity ~combine:Float.max 0 100
          (fun i -> float_of_int ((i * 37) mod 89))
      in
      let expect = ref neg_infinity in
      for i = 0 to 99 do
        expect := Float.max !expect (float_of_int ((i * 37) mod 89))
      done;
      Alcotest.(check (float 0.)) "max reduce" !expect best;
      Alcotest.(check int) "empty range is neutral" 42
        (Par.parallel_reduce ~neutral:42 ~combine:( + ) 5 5 (fun _ -> 1)))

exception Boom of int

let test_exception_propagates () =
  with_jobs 4 (fun () ->
      let ran_after = ref false in
      (try
         Par.parallel_for ~chunk:1 0 64 (fun i ->
             if i = 13 then raise (Boom i));
         Alcotest.fail "exception swallowed"
       with Boom 13 -> ran_after := true);
      Alcotest.(check bool) "Boom 13 re-raised" true !ran_after;
      (* the pool must stay usable after a failed region *)
      let sum = Atomic.make 0 in
      Par.parallel_for 0 100 (fun _ -> ignore (Atomic.fetch_and_add sum 1));
      Alcotest.(check int) "pool alive after exception" 100 (Atomic.get sum))

let test_nested () =
  with_jobs 4 (fun () ->
      let grid = Array.make_matrix 16 16 0 in
      Par.parallel_for ~chunk:1 0 16 (fun i ->
          Par.parallel_for ~chunk:1 0 16 (fun j -> grid.(i).(j) <- (i * 16) + j));
      let ok = ref true in
      Array.iteri
        (fun i row ->
          Array.iteri (fun j v -> if v <> (i * 16) + j then ok := false) row)
        grid;
      Alcotest.(check bool) "nested regions complete" true !ok)

let test_jobs_one_sequential () =
  with_jobs 1 (fun () ->
      let trace = ref [] in
      Par.parallel_for 0 20 (fun i -> trace := i :: !trace);
      Alcotest.(check (list int))
        "jobs=1 runs in order on the caller"
        (List.init 20 (fun i -> 19 - i))
        !trace)

let test_set_jobs_invalid () =
  Alcotest.check_raises "set_jobs 0 rejected"
    (Invalid_argument "Qdp_par.set_jobs: need at least one job") (fun () ->
      Par.set_jobs 0)

(* --- deterministic Monte-Carlo --- *)

let mc_hits ~jobs ~seed ~trials =
  with_jobs jobs (fun () ->
      let st = Random.State.make [| seed |] in
      let hits =
        Par.monte_carlo_hits ~st ~trials (fun s -> Random.State.bool s)
      in
      (* the caller's state must also advance identically *)
      (hits, Random.State.int st 1_000_000))

let test_mc_jobs_invariant () =
  List.iter
    (fun (seed, trials) ->
      let h1 = mc_hits ~jobs:1 ~seed ~trials in
      let h4 = mc_hits ~jobs:4 ~seed ~trials in
      Alcotest.(check (pair int int))
        (Printf.sprintf "seed %d trials %d: jobs 1 = jobs 4" seed trials)
        h1 h4)
    [ (1, 1); (2, 63); (3, 64); (4, 65); (5, 1000); (6, 2048) ];
  Alcotest.(check int) "trials <= 0 gives 0 hits" 0
    (Par.monte_carlo_hits ~st:(Random.State.make [| 9 |]) ~trials:0 (fun _ ->
         true))

let qcheck_estimate_acceptance =
  QCheck.Test.make ~count:20
    ~name:"estimate_acceptance identical at jobs 1 and jobs 4"
    QCheck.(pair (int_bound 10_000) (int_range 1 600))
    (fun (seed, trials) ->
      let estimate jobs =
        with_jobs jobs (fun () ->
            let st = Random.State.make [| seed; 77 |] in
            Qdp_network.Runtime.estimate_acceptance ~st ~trials (fun s ->
                Random.State.float s 1. < 0.3))
      in
      estimate 1 = estimate 4)

(* --- integration: sweep curves and cross-validation verdicts --- *)

let small_spec =
  { Qdp_core.Registry.default_spec with Qdp_core.Registry.n = 16; r = 3; t = 3 }

let sweep_json ~jobs ~seed =
  with_jobs jobs (fun () ->
      let cfg =
        { (Qdp_faults.Sweep.default ~seed) with
          Qdp_faults.Sweep.trials = 30;
          grid = [ 0.; 0.25; 0.5 ];
          protocols = Some [ "eq"; "rpls" ];
          spec = { small_spec with Qdp_core.Registry.seed }
        }
      in
      Qdp_faults.Sweep.to_json (Qdp_faults.Sweep.run cfg))

let test_sweep_jobs_invariant () =
  Alcotest.(check string)
    "sweep JSON identical at jobs 1 and jobs 4"
    (sweep_json ~jobs:1 ~seed:42)
    (sweep_json ~jobs:4 ~seed:42)

let xval_verdicts ~jobs ~seed =
  with_jobs jobs (fun () ->
      let spec = { small_spec with Qdp_core.Registry.seed } in
      List.concat_map
        (fun id ->
          match Qdp_core.Registry.find id with
          | None -> Alcotest.failf "no registry entry %s" id
          | Some e -> (
              let st = Random.State.make [| seed; 5 |] in
              match
                Qdp_core.Registry.cross_validate_demo ~trials:400 ~st spec e
              with
              | None -> Alcotest.failf "%s has no network backend" id
              | Some per_instance ->
                  List.concat_map
                    (fun (inst, checks) ->
                      List.map
                        (fun c ->
                          Format.asprintf "%s: %a" inst Qdp_core.Dqma.pp_check
                            c)
                        checks)
                    per_instance))
        [ "eq"; "gt" ])

let test_xval_jobs_invariant () =
  Alcotest.(check (list string))
    "cross-validation verdicts identical at jobs 1 and jobs 4"
    (xval_verdicts ~jobs:1 ~seed:11)
    (xval_verdicts ~jobs:4 ~seed:11)

(* --- fingerprint memo hammered from 4 domains --- *)

let test_fingerprint_hammer () =
  with_jobs 1 (fun () ->
      (* raw domains on purpose: bypass the pool so the cache sees
         genuinely concurrent find/add/evict traffic *)
      (* key space (300 seeds x 3 sizes) exceeds the 512-entry cap, so
         the single-binding eviction path runs under contention too *)
      let worker d () =
        for i = 0 to 399 do
          let seed = 1000 + (((7 * i) + d) mod 300) in
          let n = 8 + (4 * ((i + d) mod 3)) in
          let fp = Qdp_fingerprint.Fingerprint.standard ~seed ~n in
          let fp' = Qdp_fingerprint.Fingerprint.standard ~seed ~n in
          if
            Qdp_fingerprint.Fingerprint.input_bits fp <> n
            || Qdp_fingerprint.Fingerprint.input_bits fp' <> n
          then failwith "bad fingerprint from concurrent cache"
        done
      in
      let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join domains;
      let a = Qdp_fingerprint.Fingerprint.standard ~seed:1000 ~n:8 in
      let b = Qdp_fingerprint.Fingerprint.standard ~seed:1000 ~n:8 in
      Alcotest.(check bool) "cache still memoizes" true (a == b))

let () =
  Alcotest.run "par"
    [ ( "pool",
        [ Alcotest.test_case "parallel_for coverage" `Quick test_for_covers;
          Alcotest.test_case "parallel_map_array" `Quick test_map;
          Alcotest.test_case "parallel_reduce" `Quick test_reduce;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested regions" `Quick test_nested;
          Alcotest.test_case "jobs=1 is sequential" `Quick
            test_jobs_one_sequential;
          Alcotest.test_case "set_jobs validation" `Quick test_set_jobs_invalid
        ] );
      ( "determinism",
        [ Alcotest.test_case "monte_carlo_hits jobs-invariant" `Quick
            test_mc_jobs_invariant;
          QCheck_alcotest.to_alcotest qcheck_estimate_acceptance;
          Alcotest.test_case "sweep curves jobs-invariant" `Slow
            test_sweep_jobs_invariant;
          Alcotest.test_case "cross-validation jobs-invariant" `Slow
            test_xval_jobs_invariant
        ] );
      ( "shared-state",
        [ Alcotest.test_case "fingerprint cache, 4 domains" `Quick
            test_fingerprint_hammer
        ] )
    ]
