(* Tests for the unifying Dqma framework (Definitions 5-8 as values). *)

open Qdp_codes
open Qdp_network
open Qdp_core

let rng = Random.State.make [| 0xdf1 |]

let distinct_pair st n =
  let x = Gf2.random st n in
  let rec go () =
    let y = Gf2.random st n in
    if Gf2.equal x y then go () else y
  in
  (x, go ())

let test_demo_suite_meets_spec () =
  List.iter
    (fun packed ->
      let name, e = Dqma.evaluate_packed packed in
      Alcotest.(check bool) (name ^ " meets spec") true e.Dqma.meets_spec)
    (Protocols.init ();
     Registry.demo_suite ~seed:17)

let test_eq_path_adapter_consistent () =
  let n = 20 and r = 4 in
  let params = Eq_path.make ~repetitions:8 ~seed:31 ~n ~r () in
  let proto = Dqma.eq_path params in
  let x, y = distinct_pair rng n in
  (* the adapter's evaluation matches direct module calls *)
  let e = Dqma.evaluate proto (x, y) in
  Alcotest.(check bool) "no instance" false e.Dqma.instance_is_yes;
  let best, _ = Eq_path.best_attack_accept params x y in
  Alcotest.(check (float 1e-9)) "attack matches module"
    (Sim.repeat_accept 8 best) e.Dqma.best_attack;
  let e_yes = Dqma.evaluate proto (x, Gf2.copy x) in
  Alcotest.(check (float 1e-9)) "completeness" 1. e_yes.Dqma.honest_accept

let test_gt_adapter_attack_library_nonempty () =
  let n = 12 in
  let params = Gt.make ~repetitions:1 ~seed:32 ~n ~r:3 () in
  let proto = Dqma.gt params in
  let x = Gf2.of_int ~width:n 100 and y = Gf2.of_int ~width:n 900 in
  (* GT (x, y) = 0 but cheating indices exist (x has 1-bits where y has 0) *)
  Alcotest.(check bool) "no instance" false (proto.Dqma.value (x, y));
  Alcotest.(check bool) "attack library nonempty" true
    (proto.Dqma.attacks (x, y) <> [])

let test_honest_none_on_no_instance () =
  let params = Eq_path.make ~repetitions:2 ~seed:33 ~n:16 ~r:3 () in
  let proto = Dqma.eq_path params in
  let x, y = distinct_pair rng 16 in
  Alcotest.(check bool) "no honest prover" true (proto.Dqma.honest (x, y) = None)

let test_models_assigned () =
  let params = Eq_path.make ~repetitions:1 ~seed:34 ~n:8 ~r:2 () in
  Alcotest.(check bool) "eq_path is dQMA^sep" true
    ((Dqma.eq_path params).Dqma.model = Dqma.DQMA_sep);
  Alcotest.(check bool) "dma is DMA" true
    ((Dqma.dma_trivial ~n:8 ~r:2).Dqma.model = Dqma.DMA);
  Alcotest.(check string) "model printer" "dQMA^sep,sep"
    (Format.asprintf "%a" Dqma.pp_model Dqma.DQMA_sep_sep)

let test_costs_through_adapter () =
  let n = 16 and r = 3 in
  let params = Eq_path.make ~repetitions:4 ~seed:35 ~n ~r () in
  let proto = Dqma.eq_path params in
  let x = Gf2.random rng n in
  let c = proto.Dqma.costs (x, Gf2.copy x) in
  Alcotest.(check int) "costs match module"
    (Eq_path.costs params).Report.local_proof_qubits
    c.Report.local_proof_qubits

let test_multi_instance_adapter () =
  let g = Graph.star 3 in
  let params = Eq_tree.make ~repetitions:4 ~seed:36 ~n:16 ~r:2 () in
  let proto = Dqma.eq_tree params in
  let x = Gf2.random rng 16 in
  let inst =
    { Dqma.graph = g; terminals = [ 1; 2; 3 ]; inputs = Array.make 3 x }
  in
  let e = Dqma.evaluate proto inst in
  Alcotest.(check bool) "yes instance" true e.Dqma.instance_is_yes;
  Alcotest.(check (float 1e-9)) "complete" 1. e.Dqma.honest_accept

let () =
  Alcotest.run "dqma_framework"
    [
      ( "dqma",
        [
          Alcotest.test_case "demo suite meets spec" `Slow
            test_demo_suite_meets_spec;
          Alcotest.test_case "eq_path adapter" `Quick
            test_eq_path_adapter_consistent;
          Alcotest.test_case "gt attack library" `Quick
            test_gt_adapter_attack_library_nonempty;
          Alcotest.test_case "honest none on no" `Quick
            test_honest_none_on_no_instance;
          Alcotest.test_case "models" `Quick test_models_assigned;
          Alcotest.test_case "costs" `Quick test_costs_through_adapter;
          Alcotest.test_case "multi instance" `Quick test_multi_instance_adapter;
        ] );
    ]
