(* Tests for the Qdp_dist multi-process coordinator: backoff policy
   math, wire-frame round-trips and CRC detection, worker-pool results
   vs. the sequential path (byte-identity under chaos injection, the
   central invariant), shard accounting (nothing lost, nothing
   double-counted), degradation paths (attempt budget, respawn budget,
   pool-started fallback) and exception transparency.

   Ordering matters: every test before [domains interplay] must leave
   the Qdp_par domain pool unstarted (jobs pinned to 1), because
   OCaml 5 forbids fork once a domain has been spawned — which is
   itself the behaviour the final tests pin down. *)

module Dist = Qdp_dist
module Backoff = Qdp_dist.Backoff
module Frame = Qdp_dist.Frame

let () = Qdp_core.Protocols.init ()

(* Keep the pool cold: the sequential baseline for every identity
   check below, and the precondition for forking at all.  The
   oversubscription clamp is disabled so that when [domains interplay]
   finally raises the budget, the pool genuinely starts even on a
   1-core host. *)
let () = Qdp_par.set_jobs 1
let () = Qdp_par.set_oversubscribe true

let with_dist ~workers ?(chaos = 0.0) ?(chaos_seed = 42) ?(timeout = 5.0)
    ?(retries = 4) ?(respawns = -1) f =
  Dist.set_workers workers;
  Dist.set_chaos chaos;
  Dist.set_chaos_seed chaos_seed;
  Dist.set_shard_timeout timeout;
  Dist.set_max_attempts retries;
  Dist.set_respawn_budget respawns;
  Fun.protect
    ~finally:(fun () ->
      Dist.set_workers 0;
      Dist.set_chaos 0.0;
      Dist.set_chaos_seed 42;
      Dist.set_shard_timeout 30.0;
      Dist.set_max_attempts 4;
      Dist.set_respawn_budget (-1))
    f

let report () =
  match Dist.last_report () with
  | Some r -> r
  | None -> Alcotest.fail "no report recorded"

(* --- backoff --- *)

let test_backoff_delays () =
  let p = Backoff.default in
  let st = Random.State.make [| 7 |] in
  for attempt = 1 to 8 do
    let d = Backoff.delay p ~st ~attempt in
    let raw =
      min p.Backoff.max_delay_s
        (p.Backoff.base_s *. (p.Backoff.factor ** float_of_int (attempt - 1)))
    in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d within jitter band" attempt)
      true
      (d >= raw *. (1.0 -. p.Backoff.jitter) -. 1e-12
      && d <= raw *. (1.0 +. p.Backoff.jitter) +. 1e-12)
  done;
  (* same seed, same delays *)
  let seq st = List.init 5 (fun i -> Backoff.delay p ~st ~attempt:(i + 1)) in
  Alcotest.(check (list (float 0.)))
    "seeded delays reproduce"
    (seq (Random.State.make [| 9 |]))
    (seq (Random.State.make [| 9 |]))

let test_backoff_immediate () =
  let p = Backoff.immediate ~max_attempts:3 in
  let st = Random.State.make [| 1 |] in
  let before = Random.State.bits (Random.State.copy st) in
  Alcotest.(check (float 0.))
    "immediate delay is zero" 0.0
    (Backoff.delay p ~st ~attempt:5);
  Alcotest.(check int)
    "immediate draws nothing" before
    (Random.State.bits st);
  Alcotest.check_raises "zero attempts rejected"
    (Invalid_argument "Backoff.immediate: need at least one attempt")
    (fun () -> ignore (Backoff.immediate ~max_attempts:0))

let test_backoff_run () =
  let p = Backoff.immediate ~max_attempts:4 in
  let calls = ref 0 in
  let retries = ref [] in
  let r =
    Backoff.run ~sleep:(fun _ -> ())
      ~on_retry:(fun ~attempt ~delay_s:_ -> retries := attempt :: !retries)
      p
      ~retry_if:(fun v -> v < 0)
      (fun ~attempt ->
        incr calls;
        if attempt < 3 then -1 else attempt)
  in
  Alcotest.(check int) "returns first success" 3 r;
  Alcotest.(check int) "stops after success" 3 !calls;
  Alcotest.(check (list int)) "on_retry per failure" [ 2; 1 ] !retries;
  let r =
    Backoff.run ~sleep:(fun _ -> ()) p ~retry_if:(fun _ -> true) (fun ~attempt -> attempt)
  in
  Alcotest.(check int) "budget caps attempts" 4 r

(* --- framing --- *)

let all_msgs =
  [
    Frame.Task { shard = 0; attempt = 1 };
    Frame.Ack { shard = 12345; attempt = 3 };
    Frame.Result { shard = 7; attempt = 2; payload = "" };
    Frame.Result { shard = 999; attempt = 9; payload = String.make 5000 '\161' };
    Frame.Failed { shard = 1; attempt = 1; reason = "Division_by_zero" };
    Frame.Stop;
  ]

let feed_all r s =
  Frame.feed r (Bytes.of_string s) (String.length s)

let test_frame_roundtrip () =
  let r = Frame.reader () in
  (* all frames concatenated, delivered one byte at a time *)
  let wire = String.concat "" (List.map Frame.encode all_msgs) in
  let got = ref [] in
  String.iter
    (fun c ->
      feed_all r (String.make 1 c);
      match Frame.next r with
      | `Msg m -> got := m :: !got
      | `More -> ()
      | `Corrupt -> Alcotest.fail "spurious corruption")
    wire;
  Alcotest.(check int) "all frames decoded" (List.length all_msgs)
    (List.length !got);
  Alcotest.(check bool) "frames round-trip" true (List.rev !got = all_msgs)

let test_frame_crc () =
  Alcotest.(check int32)
    "CRC-32 known answer" 0xCBF43926l
    (Frame.crc32 "123456789");
  (* flipping any single byte after the magic must never decode *)
  let base = Frame.encode (Frame.Result { shard = 3; attempt = 1; payload = "hello" }) in
  for i = 4 to String.length base - 1 do
    let b = Bytes.of_string base in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    let r = Frame.reader () in
    Frame.feed r b (Bytes.length b);
    match Frame.next r with
    | `Msg _ -> Alcotest.failf "flipped byte %d decoded" i
    | `Corrupt | `More -> ()
  done;
  (* garbage before a valid frame is corruption, not a frame *)
  let r = Frame.reader () in
  feed_all r "NOISE";
  (match Frame.next r with
  | `Corrupt -> ()
  | _ -> Alcotest.fail "bad magic not flagged")

(* --- map_shards: plain identity and accounting --- *)

let shard_value i =
  (* self-seeded per index, like every wired grid *)
  let st = Random.State.make [| 0xBEEF; i |] in
  (i, Random.State.float st 1.0)

let seq_shards n = Array.init n shard_value

let test_map_shards_identity () =
  let expected = seq_shards 37 in
  with_dist ~workers:3 (fun () ->
      let got = Dist.map_shards ~label:"t/id" ~n:37 shard_value in
      Alcotest.(check bool) "workers match sequential" true (got = expected);
      let r = report () in
      Alcotest.(check int) "all shards accounted" 37
        (r.Dist.rp_from_workers + r.Dist.rp_in_process);
      Alcotest.(check bool) "forked for real" false r.Dist.rp_fallback;
      Alcotest.(check int) "no duplicates" 0 r.Dist.rp_duplicates)

let test_map_shards_empty_and_zero_workers () =
  with_dist ~workers:4 (fun () ->
      Alcotest.(check bool)
        "n=0 is empty" true
        (Dist.map_shards ~n:0 shard_value = [||]));
  with_dist ~workers:0 (fun () ->
      Alcotest.(check bool)
        "workers=0 in-process" true
        (Dist.map_shards ~n:5 shard_value = seq_shards 5))

(* --- chaos: the central invariant --- *)

let chaos_identity ~p ~seed ~n =
  let expected = seq_shards n in
  with_dist ~workers:3 ~chaos:p ~chaos_seed:seed ~timeout:0.3 (fun () ->
      let got = Dist.map_shards ~label:"t/chaos" ~n shard_value in
      Alcotest.(check bool)
        (Printf.sprintf "chaos p=%.2f seed=%d byte-identical" p seed)
        true (got = expected);
      let r = report () in
      Alcotest.(check int)
        "nothing lost or double-counted" n
        (r.Dist.rp_from_workers + r.Dist.rp_in_process))

let test_chaos_identity () =
  chaos_identity ~p:0.3 ~seed:1 ~n:24;
  chaos_identity ~p:0.5 ~seed:2 ~n:24

let test_chaos_total () =
  (* p=1: every attempt sabotaged, every shard must degrade in-process
     and the output still matches *)
  let n = 8 in
  let expected = seq_shards n in
  with_dist ~workers:2 ~chaos:1.0 ~chaos_seed:5 ~timeout:0.3 ~retries:2
    (fun () ->
      let got = Dist.map_shards ~label:"t/total" ~n shard_value in
      Alcotest.(check bool) "p=1 still byte-identical" true (got = expected);
      let r = report () in
      Alcotest.(check int) "all shards degraded" n r.Dist.rp_degraded;
      Alcotest.(check int) "all computed in-process" n r.Dist.rp_in_process)

let prop_chaos_qcheck =
  QCheck.Test.make ~count:8 ~name:"chaos schedule never changes results"
    QCheck.(pair (int_bound 1000) (int_bound 1))
    (fun (seed, pi) ->
      let p = if pi = 0 then 0.3 else 0.6 in
      let n = 16 in
      let expected = seq_shards n in
      with_dist ~workers:2 ~chaos:p ~chaos_seed:seed ~timeout:0.3 (fun () ->
          let got = Dist.map_shards ~label:"t/qc" ~n shard_value in
          let r = report () in
          got = expected
          && r.Dist.rp_from_workers + r.Dist.rp_in_process = n
          && r.Dist.rp_duplicates = 0))

let test_chaos_deterministic_schedule () =
  (* same config twice: identical event accounting, not just results *)
  let run () =
    with_dist ~workers:2 ~chaos:0.5 ~chaos_seed:11 ~timeout:0.3 (fun () ->
        ignore (Dist.map_shards ~label:"t/det" ~n:20 shard_value);
        let r = report () in
        ( r.Dist.rp_retries,
          r.Dist.rp_degraded,
          r.Dist.rp_from_workers,
          r.Dist.rp_in_process ))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "event accounting reproduces" true (a = b)

(* --- degradation paths --- *)

let test_full_degradation () =
  (* respawn budget 0 + certain crashes: the pool empties and the
     whole tail runs in-process, still byte-identical *)
  let n = 10 in
  let expected = seq_shards n in
  with_dist ~workers:2 ~chaos:1.0 ~chaos_seed:3 ~timeout:0.3 ~respawns:0
    (fun () ->
      let got = Dist.map_shards ~label:"t/degrade" ~n shard_value in
      Alcotest.(check bool) "degraded run byte-identical" true (got = expected);
      let r = report () in
      Alcotest.(check int) "no respawns granted" 0 r.Dist.rp_respawns;
      Alcotest.(check int) "everything accounted" n
        (r.Dist.rp_from_workers + r.Dist.rp_in_process))

exception Boom of int

let test_worker_exception_propagates () =
  with_dist ~workers:2 (fun () ->
      Alcotest.check_raises "shard exception re-raised" (Boom 4) (fun () ->
          ignore
            (Dist.map_shards ~label:"t/raise" ~n:8 (fun i ->
                 if i = 4 then raise (Boom i) else i))))

(* --- metric shipping --- *)

let test_metrics_cross_process () =
  let c = Qdp_obs.Metrics.counter "test.dist.work" in
  Qdp_obs.with_enabled true (fun () ->
      Qdp_obs.Metrics.reset ();
      with_dist ~workers:2 (fun () ->
          ignore
            (Dist.map_shards ~label:"t/metrics" ~n:12 (fun i ->
                 Qdp_obs.Metrics.incr c;
                 i)));
      let snap = Qdp_obs.Metrics.snapshot () in
      (match Qdp_obs.Metrics.find snap "test.dist.work" with
      | Some (Qdp_obs.Metrics.Counter_v v) ->
          Alcotest.(check int) "worker increments shipped home" 12 v
      | _ -> Alcotest.fail "counter missing");
      match Qdp_obs.Metrics.find snap "dist.results" with
      | Some (Qdp_obs.Metrics.Counter_v v) ->
          Alcotest.(check bool) "dist.results visible" true (v > 0)
      | _ -> Alcotest.fail "dist.results missing")

(* --- monte_carlo_hits identity --- *)

let mc_trial st = Random.State.float st 1.0 < 0.37

let test_monte_carlo_identity () =
  let run () =
    let st = Random.State.make [| 2024 |] in
    let hits = Dist.monte_carlo_hits ~st ~trials:5000 mc_trial in
    (* the caller's state must advance identically too *)
    (hits, Random.State.bits st)
  in
  let seq = with_dist ~workers:0 run in
  let par = Qdp_par.monte_carlo_hits ~st:(Random.State.make [| 2024 |]) ~trials:5000 mc_trial in
  Alcotest.(check int) "workers=0 matches Qdp_par" par (fst seq);
  let dist = with_dist ~workers:3 run in
  Alcotest.(check bool) "workers=3 identical incl. caller state" true
    (dist = seq);
  let chaotic =
    with_dist ~workers:3 ~chaos:0.4 ~chaos_seed:8 ~timeout:0.3 run
  in
  Alcotest.(check bool) "chaotic run identical" true (chaotic = seq)

(* --- cross_validate / sweep identity through the wiring --- *)

let test_cross_validate_identity () =
  let open Qdp_core in
  let spec = { Registry.default_spec with seed = 5; n = 12; r = 3; t = 3 } in
  let entry =
    match Registry.find "eq" with
    | Some e -> e
    | None -> Alcotest.fail "eq not registered"
  in
  let run () =
    let st = Random.State.make [| 0xc5; 77 |] in
    match Registry.cross_validate_demo ~trials:400 ~st spec entry with
    | None -> Alcotest.fail "eq has no network backend"
    | Some results ->
        List.concat_map
          (fun (label, checks) ->
            List.map
              (fun c ->
                Printf.sprintf "%s/%s %.17g %.17g %d %.17g %b" label
                  c.Dqma.check_strategy c.Dqma.analytic c.Dqma.sampled
                  c.Dqma.trials c.Dqma.tolerance c.Dqma.agree)
              checks)
          results
        |> String.concat "\n"
  in
  let baseline = with_dist ~workers:0 run in
  let dist = with_dist ~workers:2 run in
  Alcotest.(check string) "xval byte-identical with workers" baseline dist;
  let chaotic =
    with_dist ~workers:2 ~chaos:0.5 ~chaos_seed:13 ~timeout:1.0 run
  in
  Alcotest.(check string) "xval byte-identical under chaos" baseline chaotic

(* --- interplay with the domain pool (must stay last) --- *)

let test_domains_interplay () =
  let n = 21 in
  let expected = seq_shards n in
  (* start the pool for real *)
  Qdp_par.set_jobs 4;
  Qdp_par.parallel_for 0 64 (fun _ -> ());
  Alcotest.(check bool) "pool is up" true (Qdp_par.pool_started ());
  with_dist ~workers:3 (fun () ->
      let got = Dist.map_shards ~label:"t/pool" ~n shard_value in
      Alcotest.(check bool) "pool-started fallback identical" true
        (got = expected);
      let r = report () in
      Alcotest.(check bool) "fallback recorded" true r.Dist.rp_fallback)

let () =
  Alcotest.run "dist"
    [
      ( "backoff",
        [
          Alcotest.test_case "delay bands" `Quick test_backoff_delays;
          Alcotest.test_case "immediate" `Quick test_backoff_immediate;
          Alcotest.test_case "run loop" `Quick test_backoff_run;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "crc detection" `Quick test_frame_crc;
        ] );
      ( "map_shards",
        [
          Alcotest.test_case "identity" `Quick test_map_shards_identity;
          Alcotest.test_case "edges" `Quick test_map_shards_empty_and_zero_workers;
          Alcotest.test_case "exception" `Quick test_worker_exception_propagates;
          Alcotest.test_case "metrics shipped" `Quick test_metrics_cross_process;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "identity" `Quick test_chaos_identity;
          Alcotest.test_case "total sabotage" `Quick test_chaos_total;
          QCheck_alcotest.to_alcotest prop_chaos_qcheck;
          Alcotest.test_case "deterministic accounting" `Quick
            test_chaos_deterministic_schedule;
          Alcotest.test_case "full degradation" `Quick test_full_degradation;
        ] );
      ( "grids",
        [
          Alcotest.test_case "monte carlo" `Quick test_monte_carlo_identity;
          Alcotest.test_case "cross validate" `Slow test_cross_validate_identity;
        ] );
      ( "pool",
        [ Alcotest.test_case "fallback after domains" `Quick test_domains_interplay ] );
    ]
