(* Tests for the profiling & cost-attribution layer: Prof section
   nesting and the attribution tree, GC-allocation attribution,
   the disabled-mode zero-cost contract, pool busy/idle accounting,
   Calib sampling and its jobs-invariance, Progress heartbeat content,
   the Json parser, and the Perf_diff noise-aware comparator. *)

module Prof = Qdp_obs.Prof
module Calib = Qdp_obs.Calib
module Progress = Qdp_obs.Progress
module Perf_diff = Qdp_obs.Perf_diff
module Json = Qdp_obs.Json

(* Busy/idle accounting and jobs-invariance tests need the pool to
   really spawn at jobs > 1, even on a 1-core host. *)
let () = Qdp_par.set_oversubscribe true

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let with_prof f =
  Prof.reset ();
  Prof.set_enabled true;
  Fun.protect ~finally:(fun () -> Prof.set_enabled false) f

(* --- Prof: sections --- *)

let test_section_nesting () =
  with_prof (fun () ->
      let r =
        Prof.section "a" (fun () ->
            let b1 = Prof.section "b" (fun () -> 1) in
            let b2 = Prof.section "b" (fun () -> 2) in
            let c = Prof.section "c" (fun () -> 4) in
            b1 + b2 + c)
      in
      Alcotest.(check int) "value passes through" 7 r);
  (* aggregates are recorded at section exit: children before parents *)
  let paths = List.map (fun e -> e.Prof.e_path) (Prof.entries ()) in
  Alcotest.(check (list string))
    "paths in first-recorded (exit) order" [ "a/b"; "a/c"; "a" ] paths;
  let entry path =
    match List.find_opt (fun e -> e.Prof.e_path = path) (Prof.entries ()) with
    | Some e -> e
    | None -> Alcotest.failf "path %s missing" path
  in
  Alcotest.(check int) "a/b aggregated over both calls" 2 (entry "a/b").Prof.e_calls;
  Alcotest.(check int) "a called once" 1 (entry "a").Prof.e_calls;
  (match Prof.tree () with
  | [ root ] ->
      Alcotest.(check string) "single root" "a" root.Prof.n_name;
      Alcotest.(check (list string))
        "children in first-seen order" [ "b"; "c" ]
        (List.map (fun n -> n.Prof.n_name) root.Prof.n_children);
      Alcotest.(check bool) "self time clamped at 0" true
        (root.Prof.n_self_s >= 0.);
      Alcotest.(check bool) "root wall covers children" true
        (root.Prof.n_wall_s
        >= List.fold_left
             (fun s n -> s +. n.Prof.n_wall_s)
             0. root.Prof.n_children)
  | forest -> Alcotest.failf "expected one root, got %d" (List.length forest));
  let flat_names = List.map (fun r -> r.Prof.r_name) (Prof.flat ()) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in flat profile") true
        (List.mem n flat_names))
    [ "a"; "b"; "c" ];
  Prof.reset ();
  Alcotest.(check int) "reset clears entries" 0 (List.length (Prof.entries ()))

let test_gc_attribution () =
  with_prof (fun () ->
      Prof.section "alloc" (fun () ->
          ignore (Sys.opaque_identity (Array.make 200_000 0.))));
  match Prof.entries () with
  | [ e ] ->
      Alcotest.(check string) "path" "alloc" e.Prof.e_path;
      Alcotest.(check bool) "wall time is non-negative" true (e.Prof.e_wall_s >= 0.);
      Alcotest.(check bool) "the 200k-word array is attributed" true
        (e.Prof.e_minor_words +. e.Prof.e_major_words >= 100_000.);
      Alcotest.(check bool) "word counts are non-negative" true
        (e.Prof.e_minor_words >= 0.
        && e.Prof.e_major_words >= 0.
        && e.Prof.e_promoted_words >= 0.
        && e.Prof.e_compactions >= 0)
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

let noop () = ()

let test_disabled_noop () =
  Prof.set_enabled false;
  Prof.reset ();
  Alcotest.(check int) "disabled section is transparent" 9
    (Prof.section "ghost" (fun () -> 9));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Prof.entries ()));
  (* zero-cost contract: a disabled hook is one atomic load and must
     not allocate per call (budget of a few words/call for safety) *)
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Prof.section "off" noop
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "1000 disabled sections allocated %.0f words" delta)
    true (delta < 16_000.);
  Alcotest.(check int) "still nothing recorded" 0 (List.length (Prof.entries ()))

let test_section_exception () =
  with_prof (fun () ->
      (try
         Prof.section "outer" (fun () ->
             Prof.section "boom" (fun () -> failwith "boom"))
       with Failure _ -> ());
      Prof.section "after" (fun () -> ()));
  let paths = List.map (fun e -> e.Prof.e_path) (Prof.entries ()) in
  Alcotest.(check bool) "raising section recorded" true
    (List.mem "outer/boom" paths);
  Alcotest.(check bool) "stack unwound: next section roots fresh" true
    (List.mem "after" paths)

let test_domain_stats () =
  let jobs0 = Qdp_par.jobs () in
  Fun.protect
    ~finally:(fun () -> Qdp_par.set_jobs jobs0)
    (fun () ->
      with_prof (fun () ->
          Qdp_par.set_jobs 2;
          let out = Array.make 64 0. in
          Qdp_par.parallel_for 0 64 (fun i ->
              out.(i) <- Float.sqrt (float_of_int i));
          let count, wall = Prof.regions () in
          Alcotest.(check bool) "one outermost region recorded" true (count >= 1);
          Alcotest.(check bool) "region wall non-negative" true (wall >= 0.);
          let stats = Prof.domain_stats () in
          Alcotest.(check bool) "pool domains recorded" true (stats <> []);
          let tasks =
            List.fold_left (fun s d -> s + d.Prof.dom_tasks) 0 stats
          in
          Alcotest.(check bool) "tasks counted" true (tasks > 0);
          List.iter
            (fun d ->
              Alcotest.(check bool) "busy non-negative" true
                (d.Prof.dom_busy_s >= 0.))
            stats))

let test_prof_json () =
  with_prof (fun () -> Prof.section "j" (fun () -> ()));
  let j = Json.parse (Prof.to_json ()) in
  (match Json.member "sections" j with
  | Some (Json.Arr [ s ]) ->
      Alcotest.(check (option string)) "section path serialized" (Some "j")
        (Option.bind (Json.member "path" s) Json.string_opt)
  | _ -> Alcotest.fail "sections array missing");
  Alcotest.(check bool) "regions object present" true
    (Json.member "regions" j <> None)

(* --- Calib --- *)

let test_calib_sampling () =
  Calib.reset ();
  Calib.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Calib.set_enabled false;
      Calib.reset ())
    (fun () ->
      Alcotest.(check int) "value passes through" 5
        (Calib.sample ~kernel:"t" ~macs:10. (fun () -> 5));
      for _ = 1 to 599 do
        Calib.sample ~kernel:"t" ~macs:10. noop
      done;
      match Calib.kernels () with
      | [ k ] ->
          Alcotest.(check string) "kernel name" "t" k.Calib.k_name;
          Alcotest.(check int) "totals keep counting past the cap" 600
            k.Calib.k_calls;
          Alcotest.(check (float 1e-6)) "macs accumulate" 6000. k.Calib.k_macs;
          Alcotest.(check int) "raw samples capped" Calib.max_samples
            (List.length k.Calib.k_samples)
      | ks -> Alcotest.failf "expected one kernel, got %d" (List.length ks));
  Alcotest.(check int) "disabled sample is transparent" 3
    (Calib.sample ~kernel:"t" ~macs:1. (fun () -> 3));
  Alcotest.(check int) "disabled sample records nothing" 0
    (List.length (Calib.kernels ()))

(* Regression test for the sample-retention bug: the capped raw-sample
   list used to keep the FIRST max_samples calls (cold-start prefix,
   first-write-wins), so long runs exported only startup noise to the
   cost model.  The ring must keep the most recent window instead. *)
let test_calib_tail_window () =
  Calib.reset ();
  Calib.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Calib.set_enabled false;
      Calib.reset ())
    (fun () ->
      let total = Calib.max_samples + 88 in
      for i = 1 to total do
        let path = if i mod 2 = 0 then "par" else "seq" in
        Calib.sample ~kernel:"w" ~macs:(float_of_int i) ~path noop
      done;
      match Calib.kernels () with
      | [ k ] ->
          let samples = Array.of_list k.Calib.k_samples in
          Alcotest.(check int) "window holds max_samples" Calib.max_samples
            (Array.length samples);
          Alcotest.(check (float 0.)) "window starts past the evicted prefix"
            (float_of_int (total - Calib.max_samples + 1))
            samples.(0).Calib.s_macs;
          Alcotest.(check (float 0.)) "latest sample is present"
            (float_of_int total)
            samples.(Array.length samples - 1).Calib.s_macs;
          Array.iteri
            (fun j s ->
              let i = total - Calib.max_samples + 1 + j in
              if s.Calib.s_macs <> float_of_int i then
                Alcotest.failf "slot %d: expected macs %d, got %g" j i
                  s.Calib.s_macs;
              let expect = if i mod 2 = 0 then "par" else "seq" in
              if s.Calib.s_path <> expect then
                Alcotest.failf "slot %d: expected path %s, got %s" j expect
                  s.Calib.s_path)
            samples
      | ks -> Alcotest.failf "expected one kernel, got %d" (List.length ks))

(* The perf-diff inputs must be jobs-invariant: the same workload at
   jobs = 1 and jobs = 4 records identical kernel names, call counts
   and MAC totals, and computes bit-identical results. *)
let test_calib_jobs_invariance () =
  let open Qdp_linalg in
  let jobs0 = Qdp_par.jobs () in
  Calib.reset ();
  Calib.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Qdp_par.set_jobs jobs0;
      Calib.set_enabled false;
      Calib.reset ())
    (fun () ->
      let batch () =
        let st = Random.State.make [| 77 |] in
        Batch.init 512 16 (fun _ _ ->
            Cx.make
              (Random.State.float st 2. -. 1.)
              (Random.State.float st 2. -. 1.))
      in
      let view () =
        List.map
          (fun k -> (k.Calib.k_name, k.Calib.k_calls, k.Calib.k_macs))
          (Calib.kernels ())
      in
      Qdp_par.set_jobs 1;
      let g1 = Batch.gram (batch ()) in
      let v1 = view () in
      Calib.reset ();
      Qdp_par.set_jobs 4;
      let g4 = Batch.gram (batch ()) in
      let v4 = view () in
      Alcotest.(check (list (triple string int (float 0.))))
        "kernel attribution is jobs-invariant" v1 v4;
      Alcotest.(check bool) "gram MACs recorded" true
        (List.exists (fun (n, _, m) -> n = "batch.gram" && m > 0.) v1);
      Alcotest.(check bool) "results bit-identical across job counts" true
        (Batch.equal ~eps:0. (Batch.of_cols [| Mat.apply g1 (Vec.basis 16 0) |])
           (Batch.of_cols [| Mat.apply g4 (Vec.basis 16 0) |])
        && Mat.equal ~eps:0. g1 g4))

(* --- Progress --- *)

let drain buf =
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Buffer.clear buf;
  List.filter (fun l -> l <> "") lines

let with_progress ?(format = Progress.Human) f =
  let buf = Buffer.create 256 in
  Progress.configure ~interval_s:0. ~format
    ~emit:(fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    ();
  Progress.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Progress.set_enabled false;
      Progress.configure ~interval_s:1.0 ~format:Progress.Human ())
    (fun () -> f buf)

let test_progress_human () =
  with_progress (fun buf ->
      let t = Progress.start ~total:4 "grid/test" in
      for _ = 1 to 4 do
        Progress.step t
      done;
      Progress.finish t;
      let lines = drain buf in
      Alcotest.(check int) "one line per step + the final one" 5
        (List.length lines);
      let first = List.hd lines in
      Alcotest.(check bool) "label and counts" true
        (contains ~needle:"qdp: grid/test 1/4 (25.0%)" first);
      Alcotest.(check bool) "eta on a partial line" true
        (contains ~needle:"eta" first);
      let last = List.nth lines 4 in
      Alcotest.(check bool) "final line marked done" true
        (contains ~needle:"4/4 (100.0%)" last && contains ~needle:" done" last))

let test_progress_json () =
  with_progress ~format:Progress.Json (fun buf ->
      let t = Progress.start ~total:2 "j" in
      Progress.step t;
      Progress.finish t;
      let lines = drain buf in
      List.iter (fun l -> ignore (Json.parse l)) lines;
      let last = List.nth lines (List.length lines - 1) in
      Alcotest.(check bool) "label serialized" true
        (contains ~needle:"\"progress\":\"j\"" last);
      Alcotest.(check bool) "final line flagged" true
        (contains ~needle:"\"done_flag\":true" last))

let test_progress_disabled () =
  let buf = Buffer.create 16 in
  Progress.configure ~interval_s:0.
    ~emit:(fun line -> Buffer.add_string buf line)
    ();
  (* not enabled: every call is a no-op *)
  let t = Progress.start ~total:2 "off" in
  Progress.step t;
  Progress.finish t;
  Alcotest.(check string) "nothing emitted" "" (Buffer.contents buf);
  Progress.configure ~interval_s:1.0 ()

let test_progress_bad_interval () =
  Alcotest.check_raises "negative interval rejected"
    (Invalid_argument "Qdp_obs.Progress.configure: interval_s >= 0.")
    (fun () -> Progress.configure ~interval_s:(-1.) ())

(* --- Json parser --- *)

let test_json_parse () =
  let j =
    Json.parse
      "{\"a\":[1,2.5,-3e2],\"s\":\"h\\u0041\\\"x\",\"b\":true,\"n\":null}"
  in
  (match Json.member "a" j with
  | Some (Json.Arr [ x; y; z ]) ->
      Alcotest.(check (option (float 0.))) "int" (Some 1.) (Json.num_opt x);
      Alcotest.(check (option (float 0.))) "float" (Some 2.5) (Json.num_opt y);
      Alcotest.(check (option (float 0.))) "exponent" (Some (-300.))
        (Json.num_opt z)
  | _ -> Alcotest.fail "array missing");
  Alcotest.(check (option string)) "escapes decoded" (Some "hA\"x")
    (Option.bind (Json.member "s" j) Json.string_opt);
  Alcotest.(check bool) "bool and null" true
    (Json.member "b" j = Some (Json.Bool true)
    && Json.member "n" j = Some Json.Null);
  let fails s =
    match Json.parse s with
    | _ -> false
    | exception Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "truncated input rejected" true (fails "{\"a\":");
  Alcotest.(check bool) "trailing garbage rejected" true (fails "{} x");
  Alcotest.(check bool) "bare words rejected" true (fails "nope")

let test_json_unicode () =
  let parsed s =
    match Json.parse s with Json.String v -> v | _ -> Alcotest.fail "string"
  in
  Alcotest.(check string) "2-byte utf8" "\xc3\xa9" (parsed "\"\\u00e9\"");
  Alcotest.(check string) "3-byte utf8" "\xe2\x82\xac" (parsed "\"\\u20aC\"");
  Alcotest.(check string) "surrogate pair decodes to 4-byte utf8"
    "\xf0\x9d\x84\x9e"
    (parsed "\"\\ud834\\udd1e\"");
  let fails s =
    match Json.parse s with
    | _ -> false
    | exception Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "lone high surrogate rejected" true
    (fails "\"\\ud834\"");
  Alcotest.(check bool) "high surrogate + non-escape rejected" true
    (fails "\"\\ud834x\"");
  Alcotest.(check bool) "inverted surrogate pair rejected" true
    (fails "\"\\udd1e\\ud834\"");
  Alcotest.(check bool) "high surrogate twice rejected" true
    (fails "\"\\ud834\\ud834\"");
  (* int_of_string would take all of these *)
  Alcotest.(check bool) "underscore in hex rejected" true (fails "\"\\u1_23\"");
  Alcotest.(check bool) "sign in hex rejected" true (fails "\"\\u+123\"");
  Alcotest.(check bool) "space in hex rejected" true (fails "\"\\u 123\"");
  Alcotest.(check bool) "truncated hex rejected" true (fails "\"\\u12\"")

(* Numbers must be lexed against the RFC 8259 grammar, not handed to
   [float_of_string]: OCaml float syntax is a strict superset and used
   to let non-JSON like [+1], [01], [1.], [.5], hex floats and [_]
   separators through silently. *)
let test_json_strict_numbers () =
  let num s =
    match Json.parse s with
    | Json.Num f -> f
    | _ -> Alcotest.failf "expected number for %s" s
  in
  List.iter
    (fun (s, v) -> Alcotest.(check (float 0.)) s v (num s))
    [
      ("0", 0.);
      ("-0", 0.);
      ("10", 10.);
      ("2.5", 2.5);
      ("0.5", 0.5);
      ("-3e2", -300.);
      ("1e+2", 100.);
      ("1E-2", 0.01);
      ("123.456e2", 12345.6);
    ];
  let fails s =
    match Json.parse s with
    | _ -> false
    | exception Json.Parse_error _ -> true
  in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " rejected") true (fails s))
    [
      "+1" (* leading plus *);
      "01" (* leading zero *);
      "-01";
      "1." (* bare trailing dot *);
      ".5" (* bare leading dot *);
      "-.5";
      "-" (* sign alone *);
      "1e" (* empty exponent *);
      "1e+";
      "1.e2" (* empty fraction *);
      "0x10" (* OCaml hex float syntax *);
      "1_000" (* OCaml separators *);
      "nan";
      "infinity";
      "1.5.2" (* trailing garbage *);
      "[1.]" (* inside containers too *);
      "{\"a\":+1}";
    ]

(* Fuzz: everything the emitter prints must reparse to the same float
   — strictness must not reject our own output.  [Json.float] maps
   non-finite values to null, so only finite floats round-trip as
   numbers. *)
let prop_json_number_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"json number emit/parse roundtrip"
    QCheck.float (fun f ->
      match Json.parse (Json.float f) with
      | Json.Num f' -> Float.is_finite f && Float.equal f f'
      | Json.Null -> not (Float.is_finite f)
      | _ -> false)

let test_json_depth () =
  (* 512 levels parse; hostile nesting raises Parse_error instead of
     blowing the stack. *)
  let nest k = String.make k '[' ^ "1" ^ String.make k ']' in
  (match Json.parse (nest 512) with
  | Json.Arr _ -> ()
  | _ -> Alcotest.fail "expected array");
  let deep = String.make 100_000 '[' in
  Alcotest.check_raises "nesting too deep"
    (Json.Parse_error "offset 513: nesting too deep") (fun () ->
      ignore (Json.parse (nest 600)));
  (match Json.parse deep with
  | _ -> Alcotest.fail "unclosed deep nest accepted"
  | exception Json.Parse_error _ -> ());
  match Json.parse (String.concat "" (List.init 1000 (fun _ -> "{\"k\":")))
  with
  | _ -> Alcotest.fail "deep object accepted"
  | exception Json.Parse_error _ -> ()

(* Fuzz: [escape] output must always reparse to the original string,
   for arbitrary bytes (including control chars and quotes). *)
let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json escape/parse roundtrip"
    QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.char)
    (fun s ->
      match Json.parse (Json.str s) with
      | Json.String s' -> String.equal s s'
      | _ -> false)

(* Fuzz: the parser must never escape with anything but Parse_error on
   arbitrary junk — no Failure from int_of_string, no Stack_overflow. *)
let prop_json_no_crash =
  let gen =
    QCheck.Gen.(
      oneof
        [
          string_size ~gen:char (0 -- 80);
          (* bias toward almost-JSON inputs: mutate one byte of a valid
             document *)
          map2
            (fun i c ->
              let doc = "{\"a\":[1,\"\\ud834\\udd1e\",null],\"b\":-2.5e3}" in
              let b = Bytes.of_string doc in
              Bytes.set b (i mod Bytes.length b) c;
              Bytes.to_string b)
            (0 -- 100) char;
        ])
  in
  QCheck.Test.make ~count:1000 ~name:"json parser total on junk"
    (QCheck.make gen) (fun s ->
      match Json.parse s with
      | _ -> true
      | exception Json.Parse_error _ -> true)

(* --- Clock --- *)

(* The monotonic clamp behind every elapsed-time measurement: a
   backwards step of the underlying source (NTP correction) must never
   surface as time going backwards, and swapping sources resets the
   clamp so a fake clock can start anywhere. *)
let test_clock_monotonic_clamp () =
  let t = ref 100. in
  Qdp_obs.Clock.set_source (Some (fun () -> !t));
  Fun.protect ~finally:(fun () -> Qdp_obs.Clock.set_source None)
  @@ fun () ->
  Alcotest.(check (float 0.)) "first read" 100. (Qdp_obs.Clock.now ());
  t := 50.;
  Alcotest.(check (float 0.)) "backwards step clamped" 100.
    (Qdp_obs.Clock.now ());
  t := 150.;
  Alcotest.(check (float 0.)) "forward step passes through" 150.
    (Qdp_obs.Clock.now ());
  t := 149.999;
  Alcotest.(check (float 0.)) "small backwards step clamped" 150.
    (Qdp_obs.Clock.now ());
  t := 150.;
  Alcotest.(check (float 0.)) "equal reading holds" 150.
    (Qdp_obs.Clock.now ());
  (* a swap resets the clamp: the fake 150 does not pin a new source
     that starts lower *)
  Qdp_obs.Clock.set_source (Some (fun () -> 10.));
  Alcotest.(check (float 0.)) "swap resets the clamp" 10.
    (Qdp_obs.Clock.now ())

let test_clock_real_source () =
  (* after [set_source None] the real clock is live again and
     non-decreasing *)
  let a = Qdp_obs.Clock.now () in
  let b = Qdp_obs.Clock.now () in
  Alcotest.(check bool) "real clock non-decreasing" true (b >= a);
  Alcotest.(check bool) "real clock plausible epoch" true (a > 1e9)

(* --- Perf_diff --- *)

let metric ?(group = "g") ?seconds key value =
  {
    Perf_diff.m_key = key;
    m_group = group;
    m_value = value;
    m_seconds = (match seconds with Some s -> s | None -> value);
  }

let verdict_of config ~old_value ~new_value =
  let r =
    Perf_diff.diff config
      ~old_:[ metric "g.x_s" old_value ]
      ~new_:[ metric "g.x_s" new_value ]
  in
  match r.Perf_diff.compared with
  | [ c ] -> c.Perf_diff.c_verdict
  | _ -> Alcotest.fail "expected one comparison"

let test_diff_verdicts () =
  let cfg = Perf_diff.default_config in
  let check_verdict name expected ~old_value ~new_value =
    let pp_verdict fmt v =
      Format.pp_print_string fmt
        (match v with
        | Perf_diff.Regression -> "Regression"
        | Improvement -> "Improvement"
        | Within_noise -> "Within_noise"
        | Below_floor -> "Below_floor")
    in
    Alcotest.(check (testable pp_verdict ( = )))
      name expected
      (verdict_of cfg ~old_value ~new_value)
  in
  check_verdict "self vs self" Perf_diff.Within_noise ~old_value:1.0
    ~new_value:1.0;
  check_verdict "2x slower regresses" Perf_diff.Regression ~old_value:1.0
    ~new_value:2.0;
  check_verdict "+5% is noise" Perf_diff.Within_noise ~old_value:1.0
    ~new_value:1.05;
  check_verdict "2x faster improves" Perf_diff.Improvement ~old_value:1.0
    ~new_value:0.5;
  check_verdict "sub-floor 2x never flagged" Perf_diff.Below_floor
    ~old_value:0.001 ~new_value:0.002;
  (* per-group override: the same 1.5x passes under a 1.0 threshold *)
  let lax = { cfg with Perf_diff.group_thresholds = [ ("g", 1.0) ] } in
  Alcotest.(check bool) "group threshold overrides the default" true
    (verdict_of lax ~old_value:1.0 ~new_value:1.5 = Perf_diff.Within_noise);
  let r =
    Perf_diff.diff cfg
      ~old_:[ metric "g.a_s" 1.0; metric "g.gone_s" 1.0 ]
      ~new_:[ metric "g.a_s" 2.0; metric "g.new_s" 1.0 ]
  in
  Alcotest.(check int) "regressions counted" 1 (Perf_diff.regressions r);
  Alcotest.(check (list string)) "only_old" [ "g.gone_s" ] r.Perf_diff.only_old;
  Alcotest.(check (list string)) "only_new" [ "g.new_s" ] r.Perf_diff.only_new;
  let report = Format.asprintf "%a" Perf_diff.pp_report r in
  Alcotest.(check bool) "report flags the regression" true
    (contains ~needle:"REGRESSION" report);
  Alcotest.(check bool) "report has the summary line" true
    (contains ~needle:"1 compared" report || contains ~needle:"compared:" report)

let perf_fixture ~seq ~par =
  Printf.sprintf
    "{\"jobs\":4,\"host\":{\"cores\":4,\"recommended_domains\":4},\n\
     \"kernels\":[{\"kernel\":\"k\",\"naive_s\":1.0,\"batched_s\":0.5,\"speedup\":2.0}],\n\
     \"groups\":[{\"group\":\"gram_batch\",\"sequential_s\":%.6f,\"parallel_s\":%.6f,\"speedup\":1.0}]}"
    seq par

let test_diff_extract_perf () =
  let ms = Perf_diff.metrics_of_string (perf_fixture ~seq:2.0 ~par:1.0) in
  let keys = List.map (fun m -> m.Perf_diff.m_key) ms in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " extracted") true (List.mem k keys))
    [
      "gram_batch.sequential_s";
      "gram_batch.parallel_s";
      "kernel.k.naive_s";
      "kernel.k.batched_s";
    ];
  Alcotest.(check bool) "speedup (not a *_s field) skipped" true
    (not (List.exists (fun k -> contains ~needle:"speedup" k) keys));
  (* the acceptance fixture pair: self-diff is clean, a synthetic 2x
     slowdown on a real group trips the gate *)
  let old_ = Perf_diff.metrics_of_string (perf_fixture ~seq:1.0 ~par:0.5) in
  let self =
    Perf_diff.diff Perf_diff.default_config ~old_ ~new_:old_
  in
  Alcotest.(check int) "self vs self: no regressions" 0
    (Perf_diff.regressions self);
  let slow = Perf_diff.metrics_of_string (perf_fixture ~seq:2.0 ~par:1.0) in
  Alcotest.(check bool) "2x fixture regresses" true
    (Perf_diff.regressions
       (Perf_diff.diff Perf_diff.default_config ~old_ ~new_:slow)
    > 0)

let test_diff_extract_calib () =
  let fixture =
    "{\"calibration\":[{\"kernel\":\"mat.mul\",\"calls\":3,\"total_macs\":100.0,\n\
     \"total_seconds\":0.5,\"ns_per_mac\":5.0,\"minor_words\":0,\"major_words\":0,\"samples\":[]}]}"
  in
  match Perf_diff.metrics_of_string fixture with
  | [ m ] ->
      Alcotest.(check string) "key" "mat.mul.ns_per_mac" m.Perf_diff.m_key;
      Alcotest.(check (float 0.)) "value" 5.0 m.Perf_diff.m_value;
      Alcotest.(check (float 0.)) "floored on total seconds" 0.5
        m.Perf_diff.m_seconds
  | ms -> Alcotest.failf "expected one metric, got %d" (List.length ms)

let test_diff_extract_obs () =
  let fixture =
    "{\"trace\":{\"spans\":1,\"dropped\":0},\n\
     \"metrics_snapshot\":{\"metrics\":[\n\
     {\"name\":\"runtime.round.seconds\",\"kind\":\"histogram\",\"count\":4,\"sum\":2.0,\"min\":0.4,\"max\":0.6},\n\
     {\"name\":\"runtime.runs\",\"kind\":\"counter\",\"value\":7},\n\
     {\"name\":\"xval.empty.seconds\",\"kind\":\"histogram\",\"count\":0,\"sum\":0.0,\"min\":0,\"max\":0}]}}"
  in
  match Perf_diff.metrics_of_string fixture with
  | [ m ] ->
      Alcotest.(check string) "only the populated .seconds histogram"
        "runtime.round.seconds.mean" m.Perf_diff.m_key;
      Alcotest.(check (float 1e-12)) "value is the mean" 0.5 m.Perf_diff.m_value;
      Alcotest.(check string) "grouped by span name" "runtime.round"
        m.Perf_diff.m_group
  | ms -> Alcotest.failf "expected one metric, got %d" (List.length ms)

let test_diff_extract_model () =
  let fixture =
    "{\"jobs\":4,\n\
     \"cost_model\":[{\"kernel\":\"mat.mul\",\n\
     \"seq\":{\"samples\":8,\"a_s\":1e-6,\"b_s_per_mac\":2e-9,\"alloc_w_per_mac\":0,\"r2\":0.99,\"total_s\":0.25},\n\
     \"par\":{\"samples\":8,\"a_s\":5e-5,\"b_s_per_mac\":5e-10,\"alloc_w_per_mac\":0,\"r2\":0.98,\"total_s\":0.125},\n\
     \"crossover_macs\":32666.0,\"par_speedup_at_1e6_macs\":3.6},\n\
     {\"kernel\":\"grid.sweep\",\n\
     \"seq\":{\"samples\":4,\"a_s\":0,\"b_s_per_mac\":1e-7,\"alloc_w_per_mac\":0,\"r2\":1,\"total_s\":0.5},\n\
     \"par\":{\"samples\":0,\"a_s\":0,\"b_s_per_mac\":0,\"alloc_w_per_mac\":0,\"r2\":0,\"total_s\":0},\n\
     \"crossover_macs\":-1,\"par_speedup_at_1e6_macs\":0}]}"
  in
  let ms = Perf_diff.metrics_of_string fixture in
  let find key =
    match List.find_opt (fun m -> m.Perf_diff.m_key = key) ms with
    | Some m -> m
    | None -> Alcotest.failf "metric %s missing" key
  in
  Alcotest.(check int) "three fitted paths extracted" 3 (List.length ms);
  let m = find "mat.mul.seq.ns_per_mac" in
  Alcotest.(check (float 1e-9)) "slope in ns/MAC" 2.0 m.Perf_diff.m_value;
  Alcotest.(check (float 0.)) "floored on the fit's total seconds" 0.25
    m.Perf_diff.m_seconds;
  Alcotest.(check string) "grouped per kernel" "mat.mul" m.Perf_diff.m_group;
  Alcotest.(check (float 1e-9)) "par slope extracted" 0.5
    (find "mat.mul.par.ns_per_mac").Perf_diff.m_value;
  (* the empty par fit (b = 0) must not become a divide-by-zero metric *)
  Alcotest.(check bool) "unfitted path skipped" true
    (not
       (List.exists
          (fun m -> m.Perf_diff.m_key = "grid.sweep.par.ns_per_mac")
          ms))

(* The no-slowdown self-check: a group whose parallel path loses to
   its own sequential baseline beyond the noise band is flagged from a
   single artifact; tiny measurements and non-perf shapes are not. *)
let test_diff_slowdowns () =
  let cfg = Perf_diff.default_config in
  let check ~seq ~par =
    Perf_diff.slowdowns cfg (Json.parse (perf_fixture ~seq ~par))
  in
  Alcotest.(check int) "healthy speedup: clean" 0
    (List.length (check ~seq:1.0 ~par:0.5));
  Alcotest.(check int) "parity within noise band: clean" 0
    (List.length (check ~seq:1.0 ~par:1.2));
  (match check ~seq:0.1 ~par:0.5 with
  | [ s ] ->
      Alcotest.(check string) "group named" "gram_batch"
        s.Perf_diff.s_group;
      Alcotest.(check (float 1e-9)) "ratio" 5.0 s.Perf_diff.s_ratio
  | l -> Alcotest.failf "expected one slowdown, got %d" (List.length l));
  Alcotest.(check int) "below the min-seconds floor: never flagged" 0
    (List.length (check ~seq:0.001 ~par:0.004));
  Alcotest.(check int) "non-perf shape: vacuously clean" 0
    (List.length
       (Perf_diff.slowdowns cfg (Json.parse "{\"calibration\":[]}")));
  (* per-group threshold overrides apply *)
  let lax = { cfg with group_thresholds = [ ("gram_batch", 10.) ] } in
  Alcotest.(check int) "group override widens the band" 0
    (List.length
       (Perf_diff.slowdowns lax (Json.parse (perf_fixture ~seq:0.1 ~par:0.5))))

let test_diff_malformed () =
  let fails s =
    match Perf_diff.metrics_of_string s with
    | _ -> false
    | exception Failure _ -> true
  in
  Alcotest.(check bool) "malformed JSON rejected" true (fails "{\"a\":");
  Alcotest.(check bool) "unrecognized shape rejected" true (fails "{}")

let () =
  Alcotest.run "prof"
    [
      ( "prof",
        [
          Alcotest.test_case "section nesting + tree" `Quick test_section_nesting;
          Alcotest.test_case "gc attribution" `Quick test_gc_attribution;
          Alcotest.test_case "disabled no-op + budget" `Quick test_disabled_noop;
          Alcotest.test_case "exception safety" `Quick test_section_exception;
          Alcotest.test_case "domain busy/idle" `Quick test_domain_stats;
          Alcotest.test_case "json export" `Quick test_prof_json;
        ] );
      ( "calib",
        [
          Alcotest.test_case "sampling + cap" `Quick test_calib_sampling;
          Alcotest.test_case "tail window keeps latest" `Quick
            test_calib_tail_window;
          Alcotest.test_case "jobs invariance" `Quick test_calib_jobs_invariance;
        ] );
      ( "progress",
        [
          Alcotest.test_case "human heartbeat" `Quick test_progress_human;
          Alcotest.test_case "json heartbeat" `Quick test_progress_json;
          Alcotest.test_case "disabled" `Quick test_progress_disabled;
          Alcotest.test_case "bad interval" `Quick test_progress_bad_interval;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser" `Quick test_json_parse;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
          Alcotest.test_case "strict numbers" `Quick test_json_strict_numbers;
          Alcotest.test_case "nesting depth" `Quick test_json_depth;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_number_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_no_crash;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic clamp" `Quick test_clock_monotonic_clamp;
          Alcotest.test_case "real source" `Quick test_clock_real_source;
        ] );
      ( "perf_diff",
        [
          Alcotest.test_case "verdicts" `Quick test_diff_verdicts;
          Alcotest.test_case "extract perf" `Quick test_diff_extract_perf;
          Alcotest.test_case "extract calib" `Quick test_diff_extract_calib;
          Alcotest.test_case "extract obs" `Quick test_diff_extract_obs;
          Alcotest.test_case "extract model" `Quick test_diff_extract_model;
          Alcotest.test_case "slowdown self-check" `Quick test_diff_slowdowns;
          Alcotest.test_case "malformed input" `Quick test_diff_malformed;
        ] );
    ]
