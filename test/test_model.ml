(* Tests for the Qdp_model calibrated cost model: least-squares fit
   recovery on synthetic data, clamping, crossover math, the
   decide precedence chain (forced > installed > call-site default),
   overflow-safe MAC estimates, the Calib/JSON round-trip, and the
   central dispatch contract — whatever the model decides, results
   are byte-identical to the forced-sequential path at every job and
   worker count.

   Ordering matters: the worker-process identity test forks, so it
   must run before anything spawns a pool domain (OCaml 5 forbids
   fork after the first Domain.spawn).  Jobs stay pinned at 1 until
   the final jobs-matrix test. *)

module Model = Qdp_model
module Calib = Qdp_obs.Calib
module Registry = Qdp_core.Registry
open Qdp_linalg

let () = Qdp_core.Protocols.init ()
let () = Qdp_par.set_jobs 1
let () = Qdp_par.set_oversubscribe true

let checkb = Alcotest.check Alcotest.bool

(* Synthetic observations on an exact line y = a + b*x. *)
let line_obs ~kernel ~path ~a ~b ~alloc xs =
  List.map
    (fun x ->
      {
        Model.o_kernel = kernel;
        o_path = path;
        o_macs = x;
        o_seconds = a +. (b *. x);
        o_minor = alloc *. x;
      })
    xs

let xs = [ 1e3; 2e3; 4e3; 8e3; 16e3 ]

let the_kernel m name =
  match
    List.find_opt (fun k -> k.Model.k_name = name) m.Model.m_kernels
  with
  | Some k -> k
  | None -> Alcotest.failf "kernel %s missing from model" name

(* --- fitting --- *)

let test_fit_recovery () =
  let m =
    Model.of_observations ~jobs:4
      (line_obs ~kernel:"k" ~path:"seq" ~a:1e-5 ~b:2e-9 ~alloc:3. xs)
  in
  match (the_kernel m "k").Model.k_seq with
  | None -> Alcotest.fail "no seq fit"
  | Some f ->
      Alcotest.(check (float 1e-12)) "intercept recovered" 1e-5 f.Model.f_a;
      Alcotest.(check (float 1e-15)) "slope recovered" 2e-9 f.Model.f_b;
      Alcotest.(check (float 1e-9)) "alloc slope recovered" 3. f.Model.f_alloc;
      Alcotest.(check (float 1e-9)) "exact line fits perfectly" 1. f.Model.f_r2;
      Alcotest.(check int) "sample count" (List.length xs) f.Model.f_n

let test_fit_degenerate () =
  (* under two samples, or all samples at one MAC count: no fit *)
  checkb "one sample: no fit" true
    (Model.fit_samples [ (1e3, 1e-3, 0.) ] = None);
  checkb "no spread: no fit" true
    (Model.fit_samples [ (1e3, 1e-3, 0.); (1e3, 2e-3, 0.) ] = None);
  (* a decreasing line would fit a negative slope; both coefficients
     are clamped at zero so predictions stay non-negative *)
  match
    Model.fit_samples (List.map (fun x -> (x, 1. -. (x *. 1e-5), 0.)) xs)
  with
  | None -> Alcotest.fail "clamped fit missing"
  | Some f ->
      Alcotest.(check (float 0.)) "negative slope clamped" 0. f.Model.f_b;
      checkb "intercept non-negative" true (f.Model.f_a >= 0.)

let test_crossover () =
  let fit a b = { Model.f_a = a; f_b = b; f_alloc = 0.; f_n = 5; f_r2 = 1. } in
  (match Model.crossover ~seq:(fit 0. 2e-9) ~par:(fit 1e-6 1e-9) with
  | Some c -> Alcotest.(check (float 1e-6)) "break-even point" 1000. c
  | None -> Alcotest.fail "crossover expected");
  checkb "par slope no better: never profitable" true
    (Model.crossover ~seq:(fit 0. 1e-9) ~par:(fit 0. 1e-9) = None);
  (* par cheaper even at zero work: crossover clamps to always-par *)
  match Model.crossover ~seq:(fit 1e-5 2e-9) ~par:(fit 1e-6 1e-9) with
  | Some c -> Alcotest.(check (float 0.)) "clamped at zero" 0. c
  | None -> Alcotest.fail "crossover expected"

let test_macs_overflow_safe () =
  (* 2^16 on every axis: the int product 2^64 would wrap negative on
     63-bit ints (this guards Mat.tensor's profitability estimate);
     the float estimate stays exact-enough and positive *)
  let n = 65536 in
  let m4 = Model.macs4 n n n n in
  checkb "no wraparound" true (m4 > 0.);
  Alcotest.(check (float 1.)) "exact float product" (2. ** 64.) m4;
  Alcotest.(check (float 0.)) "macs2" 12. (Model.macs2 3 4);
  Alcotest.(check (float 0.)) "macs3" 60. (Model.macs3 3 4 5)

(* --- decide precedence --- *)

let with_model m f =
  Model.install m;
  Fun.protect ~finally:Model.clear f

let with_force p f =
  Model.force (Some p);
  Fun.protect ~finally:(fun () -> Model.force None) f

(* A model whose "k" crossover is exactly 1000 MACs, and whose "never"
   kernel has no parallel fit at all. *)
let fixture_model () =
  Model.of_observations ~jobs:4
    (line_obs ~kernel:"k" ~path:"seq" ~a:0. ~b:2e-9 ~alloc:0. xs
    @ line_obs ~kernel:"k" ~path:"par" ~a:1e-6 ~b:1e-9 ~alloc:0. xs
    @ line_obs ~kernel:"never" ~path:"seq" ~a:0. ~b:1e-9 ~alloc:0. xs)

let test_decide_precedence () =
  Model.clear ();
  Model.force None;
  checkb "no model: call-site default wins" true
    (Model.decide ~kernel:"k" ~macs:1e6 ~default:true);
  checkb "no model: default false too" false
    (Model.decide ~kernel:"k" ~macs:1e6 ~default:false);
  with_model (fixture_model ()) (fun () ->
      (* the fitted crossover sits at 1000 MACs up to rounding of the
         recovered coefficients; probe clear of the boundary *)
      checkb "below crossover: sequential" false
        (Model.decide ~kernel:"k" ~macs:900. ~default:true);
      checkb "above crossover: parallel" true
        (Model.decide ~kernel:"k" ~macs:1100. ~default:false);
      checkb "no par fit: never parallel" false
        (Model.decide ~kernel:"never" ~macs:1e12 ~default:true);
      checkb "unknown kernel: default" true
        (Model.decide ~kernel:"mystery" ~macs:1. ~default:true);
      with_force `Seq (fun () ->
          checkb "forced seq beats the installed model" false
            (Model.decide ~kernel:"k" ~macs:1e9 ~default:true));
      with_force `Par (fun () ->
          checkb "forced par beats the installed model" true
            (Model.decide ~kernel:"never" ~macs:1. ~default:false)));
  checkb "cleared: default again" true
    (Model.decide ~kernel:"k" ~macs:1. ~default:true)

(* --- Calib round-trip --- *)

let test_of_calib_and_load_file () =
  Calib.reset ();
  Calib.set_enabled true;
  let path = Filename.temp_file "qdp_calib" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Calib.set_enabled false;
      Calib.reset ();
      Sys.remove path)
    (fun () ->
      List.iter
        (fun x ->
          Calib.sample ~kernel:"rt" ~macs:x ~path:"seq" (fun () ->
              ignore (Sys.opaque_identity (sin x)));
          Calib.sample ~kernel:"rt" ~macs:x ~path:"par" (fun () ->
              ignore (Sys.opaque_identity (cos x))))
        xs;
      let direct = Model.of_calib ~jobs:3 (Calib.kernels ()) in
      Calib.write_json path;
      match Model.load_file path with
      | Error msg -> Alcotest.failf "load_file: %s" msg
      | Ok loaded ->
          let k = the_kernel loaded "rt" in
          let kd = the_kernel direct "rt" in
          let n = function Some f -> f.Model.f_n | None -> 0 in
          Alcotest.(check int) "seq samples survive the round-trip"
            (n kd.Model.k_seq) (n k.Model.k_seq);
          Alcotest.(check int) "par path tag survives the round-trip"
            (n kd.Model.k_par) (n k.Model.k_par);
          checkb "both paths populated" true
            (n k.Model.k_seq = List.length xs
            && n k.Model.k_par = List.length xs));
  Alcotest.(check bool) "missing file is a clean error" true
    (match Model.load_file "/nonexistent/BENCH_model.json" with
    | Error _ -> true
    | Ok _ -> false)

let test_model_json_shape () =
  let m = fixture_model () in
  let j = Qdp_obs.Json.parse (Model.to_json m) in
  (match Qdp_obs.Json.member "cost_model" j with
  | Some (Qdp_obs.Json.Arr entries) ->
      Alcotest.(check int) "one entry per kernel" 2 (List.length entries);
      List.iter
        (fun e ->
          List.iter
            (fun key ->
              if Qdp_obs.Json.member key e = None then
                Alcotest.failf "key %s missing" key)
            [ "kernel"; "seq"; "par"; "crossover_macs";
              "par_speedup_at_1e6_macs" ])
        entries
  | _ -> Alcotest.fail "cost_model array missing");
  (* fixed shape: serializing twice is byte-identical *)
  Alcotest.(check string) "deterministic serialization" (Model.to_json m)
    (Model.to_json m)

(* --- dispatch identity ---------------------------------------------

   The contract every call site relies on: the model only ever picks
   between bit-identical execution paths.  We run each instrumented
   workload under forced-sequential, forced-parallel, an always-parallel
   installed model, and a never-parallel installed model, and require
   byte-identical digests. *)

let always_par_model () =
  let kernels =
    [
      "mat.mul"; "mat.tensor"; "batch.gram"; "batch.apply_into";
      "grid.monte_carlo"; "grid.attack"; "grid.sweep";
    ]
  in
  Model.of_observations ~jobs:4
    (List.concat_map
       (fun k ->
         line_obs ~kernel:k ~path:"seq" ~a:0. ~b:2e-9 ~alloc:0. xs
         @ line_obs ~kernel:k ~path:"par" ~a:0. ~b:1e-12 ~alloc:0. xs)
       kernels)

let never_par_model () =
  let kernels =
    [
      "mat.mul"; "mat.tensor"; "batch.gram"; "batch.apply_into";
      "grid.monte_carlo"; "grid.attack"; "grid.sweep";
    ]
  in
  Model.of_observations ~jobs:4
    (List.concat_map
       (fun k -> line_obs ~kernel:k ~path:"seq" ~a:0. ~b:1e-9 ~alloc:0. xs)
       kernels)

(* Each dispatch mode the matrix exercises. *)
let modes =
  [
    ("forced-seq", fun f -> with_force `Seq f);
    ("forced-par", fun f -> with_force `Par f);
    ("model-always-par", fun f -> with_model (always_par_model ()) f);
    ("model-never-par", fun f -> with_model (never_par_model ()) f);
  ]

let estimate_digest seed =
  let st = Random.State.make [| seed; 77 |] in
  let p =
    Qdp_network.Runtime.estimate_acceptance ~st ~trials:500 (fun s ->
        Random.State.float s 1. < 0.3)
  in
  Printf.sprintf "%.17g" p

let gram_digest seed =
  let st = Random.State.make [| seed |] in
  let b =
    Batch.init 256 24 (fun _ _ ->
        Cx.make
          (Random.State.float st 2. -. 1.)
          (Random.State.float st 2. -. 1.))
  in
  let g = Batch.gram b in
  let buf = Buffer.create 4096 in
  for i = 0 to 23 do
    for j = 0 to 23 do
      let z = Mat.get g i j in
      Buffer.add_string buf
        (Printf.sprintf "%.17g %.17g;" z.Complex.re z.Complex.im)
    done
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* One conformance demo per protocol model (the distinct backends the
   registry realizes), digested over every analytic/sampled check. *)
let demo_entries =
  lazy
    (let seen = Hashtbl.create 8 in
     List.filter
       (fun e ->
         let m = (Registry.info e).Registry.info_model in
         if Hashtbl.mem seen m then false
         else begin
           Hashtbl.add seen m ();
           true
         end)
       (List.filter
          (fun e -> (Registry.info e).Registry.info_conformance)
          (Registry.all ())))

let demo_digest seed entry =
  let spec =
    { Registry.default_spec with Registry.seed; n = 16; r = 3; t = 3 }
  in
  let st = Random.State.make [| seed; 5 |] in
  match Registry.cross_validate_demo ~trials:120 ~st spec entry with
  | None -> "no-demo"
  | Some results ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun (label, cs) ->
          List.iter
            (fun (c : Qdp_core.Dqma.check) ->
              Buffer.add_string buf
                (Printf.sprintf "%s %s %.17g %.17g %b;" label
                   c.Qdp_core.Dqma.check_strategy c.Qdp_core.Dqma.analytic
                   c.Qdp_core.Dqma.sampled c.Qdp_core.Dqma.agree))
            cs)
        results;
      Digest.to_hex (Digest.string (Buffer.contents buf))

let workloads seed =
  ("estimate_acceptance", fun () -> estimate_digest seed)
  :: ("batch.gram", fun () -> gram_digest seed)
  :: List.map
       (fun e ->
         ( "demo:" ^ (Registry.info e).Registry.info_id,
           fun () -> demo_digest seed e ))
       (Lazy.force demo_entries)

let check_modes_agree ~ctx seed =
  List.iter
    (fun (wname, work) ->
      let reference = ref None in
      List.iter
        (fun (mname, in_mode) ->
          let d = in_mode work in
          match !reference with
          | None -> reference := Some d
          | Some r ->
              if r <> d then
                Alcotest.failf "%s: %s under %s diverged from forced-seq"
                  ctx wname mname)
        modes)
    (workloads seed)

(* Forks per shard: must run while the pool is still cold (jobs = 1
   throughout, workers 0 then 2). *)
let test_dispatch_identity_workers () =
  List.iter
    (fun workers ->
      Qdp_dist.set_workers workers;
      Fun.protect ~finally:(fun () -> Qdp_dist.set_workers 0) @@ fun () ->
      check_modes_agree ~ctx:(Printf.sprintf "workers=%d" workers) 42)
    [ 0; 2 ]

(* Spawns pool domains: keep last. *)
let qcheck_dispatch_identity_jobs =
  QCheck.Test.make ~count:8
    ~name:"model dispatch byte-identical to forced-seq at jobs 1 and 4"
    QCheck.(int_bound 10_000)
    (fun seed ->
      List.iter
        (fun jobs ->
          let jobs0 = Qdp_par.jobs () in
          Qdp_par.set_jobs jobs;
          Fun.protect ~finally:(fun () -> Qdp_par.set_jobs jobs0)
          @@ fun () ->
          check_modes_agree ~ctx:(Printf.sprintf "jobs=%d" jobs) seed)
        [ 1; 4 ];
      true)

(* Cross-jobs identity of the digests themselves: the same seed gives
   the same bytes at jobs 1 and jobs 4, under the installed model. *)
let test_dispatch_identity_cross_jobs () =
  with_model (always_par_model ()) @@ fun () ->
  let at jobs =
    let jobs0 = Qdp_par.jobs () in
    Qdp_par.set_jobs jobs;
    Fun.protect ~finally:(fun () -> Qdp_par.set_jobs jobs0) @@ fun () ->
    List.map (fun (n, w) -> (n, w ())) (workloads 7)
  in
  List.iter2
    (fun (n, d1) (_, d4) ->
      Alcotest.(check string) (n ^ " identical at jobs 1 and 4") d1 d4)
    (at 1) (at 4)

let () =
  Alcotest.run "model"
    [
      ( "fit",
        [
          Alcotest.test_case "recovery on synthetic line" `Quick
            test_fit_recovery;
          Alcotest.test_case "degenerate inputs + clamping" `Quick
            test_fit_degenerate;
          Alcotest.test_case "crossover math" `Quick test_crossover;
          Alcotest.test_case "overflow-safe MACs" `Quick
            test_macs_overflow_safe;
        ] );
      ( "decide",
        [ Alcotest.test_case "precedence chain" `Quick test_decide_precedence ]
      );
      ( "serialization",
        [
          Alcotest.test_case "calib round-trip" `Quick
            test_of_calib_and_load_file;
          Alcotest.test_case "fixed JSON shape" `Quick test_model_json_shape;
        ] );
      ( "dispatch",
        [
          (* fork-based cases first: the pool must still be cold *)
          Alcotest.test_case "identity across workers" `Quick
            test_dispatch_identity_workers;
          QCheck_alcotest.to_alcotest qcheck_dispatch_identity_jobs;
          Alcotest.test_case "identity across jobs" `Quick
            test_dispatch_identity_cross_jobs;
        ] );
    ]
