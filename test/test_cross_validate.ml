(* Differential cross-validation: the analytic (transfer-DP) engine
   and the message-passing runtime must tell the same story on every
   registered protocol that has both backends.  Deterministic verdicts
   must reproduce exactly (tolerance 1e-6); genuinely probabilistic
   acceptances must land within the harness's statistical tolerance of
   the sampled frequency. *)

open Qdp_core

let () = Protocols.init ()

let small_spec =
  { Registry.default_spec with seed = 5; n = 12; r = 3; t = 3 }

let entry id =
  match Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "protocol %S not registered" id

(* Run the harness on one entry's demo instances and hand every check
   to [k]. *)
let checks_of ?(trials = 300) ?(spec = small_spec) id =
  let st = Random.State.make [| 0xc5; Hashtbl.hash id |] in
  match Registry.cross_validate_demo ~trials ~st spec (entry id) with
  | None -> Alcotest.failf "protocol %S has no network backend" id
  | Some results -> results

let test_agreement id () =
  List.iter
    (fun (label, checks) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s has checks" id label)
        true (checks <> []);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s %s: analytic %.6f vs sampled %.6f (tol %.4f)"
               id label c.Dqma.check_strategy c.Dqma.analytic c.Dqma.sampled
               c.Dqma.tolerance)
            true c.Dqma.agree)
        checks)
    (checks_of id)

(* The honest prover on the yes instance is a deterministic accept for
   every backed protocol here, so the harness must apply the exact
   (1e-6) tolerance and the sampled frequency must be exactly 1. *)
let test_deterministic_tolerance () =
  List.iter
    (fun id ->
      let yes_checks = List.assoc "yes" (checks_of id) in
      match
        List.find_opt (fun c -> c.Dqma.check_strategy = "honest") yes_checks
      with
      | None -> Alcotest.failf "%s: no honest check on the yes instance" id
      | Some c ->
          Alcotest.(check (float 1e-9)) (id ^ " honest analytic") 1. c.Dqma.analytic;
          Alcotest.(check (float 1e-9)) (id ^ " honest sampled") 1. c.Dqma.sampled;
          Alcotest.(check bool)
            (id ^ " deterministic tolerance")
            true
            (c.Dqma.tolerance <= 1e-6))
    [ "eq"; "eqt"; "gt"; "dma" ]

(* Attack strategies must actually be compared: the no instance of EQ
   has four attacks, none of which is deterministic, so the harness
   must fall back to the statistical tolerance. *)
let test_statistical_tolerance () =
  let no_checks = List.assoc "no" (checks_of "eq") in
  Alcotest.(check int) "four attacks" 4 (List.length no_checks);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Dqma.check_strategy ^ " uses statistical tolerance")
        true
        (c.Dqma.tolerance > 1e-3))
    no_checks

(* The harness counts its work in the observability layer. *)
let test_obs_counters () =
  Qdp_obs.with_enabled true (fun () ->
      Qdp_obs.Metrics.reset ();
      ignore (checks_of ~trials:20 "eq");
      let snap = Qdp_obs.Metrics.snapshot () in
      let counter name =
        match List.assoc_opt name snap with
        | Some (Qdp_obs.Metrics.Counter_v n) -> n
        | _ -> 0
      in
      (* yes: honest + 4 attacks; no: 4 attacks *)
      Alcotest.(check int) "checks counted" 9 (counter "crossval.checks");
      Alcotest.(check int) "runs counted" (9 * 20)
        (counter "crossval.network_runs");
      Alcotest.(check int) "no disagreements" 0
        (counter "crossval.disagreements"));
  Qdp_obs.Metrics.reset ()

(* Entries without a runtime realization must say so rather than lie. *)
let test_no_network_backends () =
  List.iter
    (fun id ->
      let st = Random.State.make [| 1 |] in
      match Registry.cross_validate_demo ~st small_spec (entry id) with
      | None -> ()
      | Some _ -> Alcotest.failf "%s unexpectedly has a network backend" id)
    [ "relay"; "dqcma"; "seteq"; "rv"; "ham" ]

let () =
  Alcotest.run "cross_validate"
    [
      ( "agreement",
        [
          Alcotest.test_case "EQ path" `Quick (test_agreement "eq");
          Alcotest.test_case "EQ tree" `Quick (test_agreement "eqt");
          Alcotest.test_case "GT" `Quick (test_agreement "gt");
          Alcotest.test_case "dMA" `Quick (test_agreement "dma");
          Alcotest.test_case "RPLS" `Quick (test_agreement "rpls");
        ] );
      ( "tolerances",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic_tolerance;
          Alcotest.test_case "statistical" `Quick test_statistical_tolerance;
        ] );
      ( "harness",
        [
          Alcotest.test_case "obs counters" `Quick test_obs_counters;
          Alcotest.test_case "no-network entries" `Quick test_no_network_backends;
        ] );
    ]
