(* Boundary-condition tests across the protocol stack: shortest paths,
   1-bit inputs, minimal trees, degenerate sets, and the compiler's
   geodesic attack. *)

open Qdp_codes
open Qdp_network
open Qdp_core

let rng = Random.State.make [| 0xed6e |]

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- r = 1: adjacent terminals, no intermediate nodes --- *)

let test_eq_path_r1 () =
  let p = Eq_path.make ~repetitions:3 ~seed:1 ~n:16 ~r:1 () in
  let x = Gf2.random rng 16 in
  check_float ~eps:1e-12 "complete" 1.
    (Eq_path.accept p x (Gf2.copy x) Strategy.Honest);
  let y =
    let z = Gf2.copy x in
    Gf2.set z 0 (not (Gf2.get z 0));
    z
  in
  (* no proof at all: soundness comes only from the final POVM *)
  let best, _ = Eq_path.best_attack_accept p x y in
  Alcotest.(check bool) "attack < 0.6" true (best < 0.6);
  Alcotest.(check int) "no proof registers" 0
    (Eq_path.costs p).Report.total_proof_qubits

let test_gt_r1 () =
  let p = Gt.make ~repetitions:2 ~seed:2 ~n:8 ~r:1 () in
  let x = Gf2.of_int ~width:8 200 and y = Gf2.of_int ~width:8 77 in
  check_float ~eps:1e-12 "complete" 1. (Gt.accept p x y (Gt.honest_prover x y))

(* --- n = 1: single-bit inputs --- *)

let test_eq_path_n1 () =
  let p = Eq_path.make ~repetitions:2 ~seed:3 ~n:1 ~r:3 () in
  let one = Gf2.of_string "1" and zero = Gf2.of_string "0" in
  check_float ~eps:1e-12 "complete" 1.
    (Eq_path.accept p one (Gf2.copy one) Strategy.Honest);
  let best, _ = Eq_path.best_attack_accept p one zero in
  Alcotest.(check bool) "distinct bits attackable below bound" true
    (best <= Eq_path.soundness_bound_single ~r:3 +. 1e-9)

let test_gt_n1 () =
  let p = Gt.make ~repetitions:2 ~seed:4 ~n:1 ~r:2 () in
  let one = Gf2.of_string "1" and zero = Gf2.of_string "0" in
  (* 1 > 0: witness index 0 with empty prefixes (the |bot> pair) *)
  check_float ~eps:1e-12 "1 > 0 complete" 1.
    (Gt.accept p one zero (Gt.honest_prover one zero));
  let best, _ = Gt.best_attack_accept p zero one in
  check_float ~eps:1e-12 "0 > 1 unprovable" 0. best

(* --- t = 2 tree degenerates to a path --- *)

let test_eq_tree_two_terminals_is_path () =
  let n = 16 and len = 4 in
  let g = Graph.path len in
  let x, y =
    let x = Gf2.random rng n in
    let rec go () =
      let y = Gf2.random rng n in
      if Gf2.equal x y then go () else y
    in
    (x, go ())
  in
  let tp = Eq_tree.make ~repetitions:1 ~seed:5 ~n ~r:len () in
  let tree_attack, _ =
    Eq_tree.best_attack_accept tp g ~terminals:[ 0; len ] ~inputs:[| x; y |]
  in
  (* the permutation test at k = 2 is the SWAP test, so the tree
     protocol on a path matches the path protocol's attack surface *)
  let pp = Eq_path.make ~repetitions:1 ~seed:5 ~n ~r:len () in
  let path_attack, _ = Eq_path.best_attack_accept pp x y in
  Alcotest.(check bool)
    (Printf.sprintf "tree %.4f ~ path %.4f" tree_attack path_attack)
    true
    (Float.abs (tree_attack -. path_attack) < 0.15)

(* --- sets of size 1 degenerate to EQ --- *)

let test_set_eq_k1 () =
  let p = Set_eq.make ~repetitions:2 ~seed:6 ~n:16 ~k:1 ~r:3 () in
  let x = Gf2.random rng 16 in
  check_float ~eps:1e-9 "singleton equal" 1.
    (Set_eq.accept p [| x |] [| Gf2.copy x |] Strategy.All_left);
  let y =
    let z = Gf2.copy x in
    Gf2.set z 3 (not (Gf2.get z 3));
    z
  in
  Alcotest.(check bool) "singleton distinct attacked" true
    (fst (Set_eq.best_attack_accept p [| x |] [| y |]) < 1.)

(* --- RV with two terminals --- *)

let test_rv_two_terminals () =
  let g = Graph.path 2 in
  let inputs = [| Gf2.of_int ~width:8 10; Gf2.of_int ~width:8 200 |] in
  let p = Rv.make ~repetitions:2 ~seed:7 ~n:8 ~r:2 () in
  check_float ~eps:1e-9 "terminal 1 is rank 1" 1.
    (Rv.honest_accept p g ~terminals:[ 0; 2 ] ~inputs ~i:1 ~j:1);
  check_float ~eps:1e-12 "terminal 0 is not rank 1" 0.
    (Rv.honest_accept p g ~terminals:[ 0; 2 ] ~inputs ~i:0 ~j:1)

(* --- relay with spacing >= r: no relay points at all --- *)

let test_relay_no_relays () =
  let p = Relay.make ~spacing:100 ~inner_repetitions:2 ~seed:8 ~n:16 ~r:4 () in
  Alcotest.(check (list int)) "no relay points" [] (Relay.relay_positions p);
  let x = Gf2.random rng 16 in
  check_float ~eps:1e-12 "still complete" 1.
    (Relay.accept p x (Gf2.copy x) (Relay.honest_prover p x))

(* --- compiler geodesic attack --- *)

let test_compiler_geodesic_attack_dominates () =
  (* on EQ instances the depth-geodesic attack should match or beat
     the constant-message attacks, mirroring the path case *)
  let n = 24 in
  let proto = Qdp_commcc.Oneway.eq ~seed:9 ~n in
  let g = Graph.path 4 in
  let terminals = [ 0; 4 ] in
  let params =
    Oneway_compiler.make ~repetitions:1 ~amplification:1 ~r:4 ~t:2 ~n ()
  in
  let x = Gf2.random rng n in
  let y =
    let rec go () =
      let y = Gf2.random rng n in
      if Gf2.equal x y then go () else y
    in
    go ()
  in
  let inputs = [| x; y |] in
  let geo =
    Oneway_compiler.single_accept params proto g ~terminals ~inputs
      (Oneway_compiler.Depth_geodesic 1)
  in
  let const =
    Oneway_compiler.single_accept params proto g ~terminals ~inputs
      (Oneway_compiler.Constant_of_terminal 0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "geodesic %.4f >= constant %.4f" geo const)
    true
    (geo >= const -. 1e-9);
  let best, name = Oneway_compiler.best_attack_accept params proto g ~terminals ~inputs in
  Alcotest.(check bool)
    (Printf.sprintf "library best %.4f (%s) < 1" best name)
    true (best < 0.9999)

(* --- degenerate graphs --- *)

let test_single_edge_graph () =
  let g = Graph.path 1 in
  Alcotest.(check int) "radius" 1 (Graph.radius g);
  let tr = Spanning_tree.build g ~terminals:[ 0; 1 ] in
  Alcotest.(check int) "two nodes" 2 (Spanning_tree.size tr);
  Alcotest.(check int) "height 1" 1 (Spanning_tree.height tr)

let () =
  Alcotest.run "edge_cases"
    [
      ( "short_paths",
        [
          Alcotest.test_case "EQ r=1" `Quick test_eq_path_r1;
          Alcotest.test_case "GT r=1" `Quick test_gt_r1;
        ] );
      ( "tiny_inputs",
        [
          Alcotest.test_case "EQ n=1" `Quick test_eq_path_n1;
          Alcotest.test_case "GT n=1" `Quick test_gt_n1;
          Alcotest.test_case "SetEq k=1" `Quick test_set_eq_k1;
        ] );
      ( "degenerate_topologies",
        [
          Alcotest.test_case "tree t=2 ~ path" `Quick
            test_eq_tree_two_terminals_is_path;
          Alcotest.test_case "RV t=2" `Quick test_rv_two_terminals;
          Alcotest.test_case "relay without relays" `Quick test_relay_no_relays;
          Alcotest.test_case "single edge" `Quick test_single_edge_graph;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "geodesic attack" `Quick
            test_compiler_geodesic_attack_dominates;
        ] );
    ]
