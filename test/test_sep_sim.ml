(* Tests for the dQMA^sep tensor-network engine: agreement with the
   product engine on product proofs, the proof-class hierarchy, and
   optimizer sanity. *)

open Qdp_linalg
open Qdp_core

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let toy k = Exact.toy_state ~qubits:1 k

let test_matches_product_engine () =
  let x_state = toy 5 and y_state = toy 11 in
  for r = 2 to 6 do
    let states =
      Array.init (r - 1) (fun i ->
          States.geodesic x_state y_state
            (float_of_int (i + 1) /. float_of_int r))
    in
    let sep =
      Sep_sim.accept
        (Sep_sim.product_instance ~d:2 ~left:x_state ~states
           ~final:(Mat.of_vec y_state))
    in
    let sim =
      Sim.path_accept
        (Sim.two_state_chain ~r ~left:x_state ~right:y_state
           ~final:(fun reg -> Cx.norm2 (Vec.dot y_state reg.(0)))
           Strategy.Geodesic)
    in
    check_float ~eps:1e-10 (Printf.sprintf "r=%d" r) sim sep
  done

let test_matches_exact_on_bell_pairs () =
  (* a genuinely entangled within-node pair, validated against the
     global state-vector simulator *)
  let x_state = toy 3 and y_state = toy 7 in
  let r = 3 in
  let bell =
    Vec.normalize (Vec.of_array [| Cx.one; Cx.zero; Cx.zero; Cx.one |])
  in
  let sep =
    Sep_sim.accept
      {
        Sep_sim.d = 2;
        left = x_state;
        pairs = Array.make (r - 1) (Mat.of_vec bell);
        final = Mat.of_vec y_state;
      }
  in
  let cfg = { Exact.r; qubits = 1 } in
  let proof = Vec.tensor bell bell in
  let exact = Exact.accept_prob cfg ~x_state ~y_state ~proof in
  check_float ~eps:1e-9 "bell pairs agree with exact" exact sep

let test_honest_complete () =
  let s = toy 4 in
  let inst =
    Sep_sim.product_instance ~d:2 ~left:s ~states:(Array.make 4 s)
      ~final:(Mat.of_vec s)
  in
  check_float ~eps:1e-10 "honest accepted" 1. (Sep_sim.accept inst)

let test_hierarchy () =
  let x_state = toy 5 and y_state = toy 11 in
  for r = 2 to 4 do
    let cfg = { Exact.r; qubits = 1 } in
    let product = Exact.best_product_attack cfg ~x_state ~y_state in
    let st = Random.State.make [| r; 77 |] in
    let _, sep =
      Sep_sim.optimize st ~d:2 ~r ~left:x_state ~final:(Mat.of_vec y_state)
        ~sweeps:12
    in
    let global, _ = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
    Alcotest.(check bool)
      (Printf.sprintf "r=%d: product %.5f <= sep %.5f" r product sep)
      true
      (product <= sep +. 1e-7);
    Alcotest.(check bool)
      (Printf.sprintf "r=%d: sep %.5f <= global %.5f" r sep global)
      true
      (sep <= global +. 1e-7)
  done

let test_optimizer_returns_consistent_value () =
  let x_state = toy 2 and y_state = toy 9 in
  let st = Random.State.make [| 13 |] in
  let inst, value =
    Sep_sim.optimize st ~d:2 ~r:3 ~left:x_state ~final:(Mat.of_vec y_state)
      ~sweeps:8
  in
  check_float ~eps:1e-9 "reported value matches instance" value
    (Sep_sim.accept inst)

let test_split_attack_hierarchy () =
  (* the dQMA(2)-style split-prover attack sits between the product
     and global optima *)
  let x_state = toy 5 and y_state = toy 11 in
  let cfg = { Exact.r = 4; qubits = 1 } in
  let st = Random.State.make [| 21 |] in
  let product = Exact.best_product_attack cfg ~x_state ~y_state in
  let split =
    Exact.optimal_split_attack st cfg ~x_state ~y_state ~cut_qubits:2 ~sweeps:10
  in
  let global, _ = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
  Alcotest.(check bool)
    (Printf.sprintf "product %.5f <= split %.5f <= global %.5f" product split
       global)
    true
    (product <= split +. 1e-7 && split <= global +. 1e-7)

let test_optimized_product_attack () =
  (* the optimized product attack (pairs a (x) b with a <> b) dominates
     the hand-written geodesic library and stays below the certified
     global optimum *)
  let x_state = toy 5 and y_state = toy 11 in
  for r = 2 to 4 do
    let cfg = { Exact.r; qubits = 1 } in
    let library = Exact.best_product_attack cfg ~x_state ~y_state in
    let st = Random.State.make [| r; 31 |] in
    let _, prod =
      Sep_sim.optimize_product st ~d:2 ~r ~left:x_state
        ~final:(Mat.of_vec y_state) ~sweeps:10
    in
    let global, _ = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
    Alcotest.(check bool)
      (Printf.sprintf "r=%d: optimized %.5f >= library %.5f - eps" r prod library)
      true
      (prod >= library -. 0.02);
    Alcotest.(check bool)
      (Printf.sprintf "r=%d: optimized %.5f <= global %.5f" r prod global)
      true
      (prod <= global +. 1e-7)
  done

let test_dimension_checks () =
  Alcotest.(check bool) "mismatched pair raises" true
    (try
       ignore
         (Sep_sim.accept
            {
              Sep_sim.d = 2;
              left = toy 1;
              pairs = [| Mat.identity 3 |];
              final = Mat.identity 2;
            });
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sep_sim"
    [
      ( "sep_sim",
        [
          Alcotest.test_case "matches product engine" `Quick
            test_matches_product_engine;
          Alcotest.test_case "bell pairs vs exact" `Quick
            test_matches_exact_on_bell_pairs;
          Alcotest.test_case "honest complete" `Quick test_honest_complete;
          Alcotest.test_case "proof-class hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "optimizer consistency" `Quick
            test_optimizer_returns_consistent_value;
          Alcotest.test_case "split-prover hierarchy" `Quick
            test_split_attack_hierarchy;
          Alcotest.test_case "optimized product attack" `Quick
            test_optimized_product_attack;
          Alcotest.test_case "dimension checks" `Quick test_dimension_checks;
        ] );
    ]
