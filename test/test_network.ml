(* Tests for graphs, the Section 3.3 spanning-tree construction, the
   Lemma 18 certificate and the message-passing runtime. *)

open Qdp_network

let rng = Random.State.make [| 0x6e7 |]

(* --- graphs --- *)

let test_path_metrics () =
  let g = Graph.path 6 in
  Alcotest.(check int) "size" 7 (Graph.size g);
  Alcotest.(check int) "radius" 3 (Graph.radius g);
  Alcotest.(check int) "diameter" 6 (Graph.diameter g);
  Alcotest.(check int) "center" 3 (Graph.center g);
  Alcotest.(check int) "degree of end" 1 (Graph.degree g 0);
  Alcotest.(check int) "degree of middle" 2 (Graph.degree g 3)

let test_star_metrics () =
  let g = Graph.star 5 in
  Alcotest.(check int) "radius" 1 (Graph.radius g);
  Alcotest.(check int) "diameter" 2 (Graph.diameter g);
  Alcotest.(check int) "max degree" 5 (Graph.max_degree g)

let test_cycle_metrics () =
  let g = Graph.cycle 8 in
  Alcotest.(check int) "radius" 4 (Graph.radius g);
  Alcotest.(check int) "diameter" 4 (Graph.diameter g)

let test_grid () =
  let g = Graph.grid ~w:3 ~h:4 in
  Alcotest.(check int) "size" 12 (Graph.size g);
  Alcotest.(check int) "corner degree" 2 (Graph.degree g 0);
  Alcotest.(check int) "diameter" 5 (Graph.diameter g)

let test_balanced_tree () =
  let g = Graph.balanced_tree ~arity:2 ~depth:3 in
  Alcotest.(check int) "size" 15 (Graph.size g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "edges" 14 (List.length (Graph.edges g))

let test_bfs () =
  let g = Graph.cycle 6 in
  let d = Graph.bfs_distances g 0 in
  Alcotest.(check int) "antipode" 3 d.(3);
  Alcotest.(check int) "neighbour" 1 d.(5)

let test_random_connected () =
  for seed = 0 to 4 do
    let st = Random.State.make [| seed |] in
    let g = Graph.random_connected st ~n:30 ~extra_edges:10 in
    Alcotest.(check bool) "connected" true (Graph.is_connected g)
  done

let test_metric_invariants () =
  (* radius <= diameter <= 2 radius on random connected graphs *)
  for seed = 0 to 9 do
    let st = Random.State.make [| seed; 0x3e7 |] in
    let g = Graph.random_connected st ~n:15 ~extra_edges:(seed mod 6) in
    let r = Graph.radius g and d = Graph.diameter g in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: r=%d d=%d" seed r d)
      true
      (r <= d && d <= 2 * r);
    (* the center achieves the radius *)
    Alcotest.(check int) "center eccentricity" r
      (Graph.eccentricity g (Graph.center g))
  done

let test_add_edge_validation () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1)

(* --- spanning trees --- *)

let test_tree_on_path () =
  let g = Graph.path 5 in
  let tr = Spanning_tree.build g ~terminals:[ 0; 5 ] in
  (* root should be a terminal; the other terminal a leaf at depth 5 *)
  let leaves = Spanning_tree.terminal_leaves tr in
  Alcotest.(check int) "two terminals" 2 (Array.length leaves);
  Alcotest.(check int) "root is terminal 0's node" (Spanning_tree.root tr) leaves.(0);
  Alcotest.(check int) "depth of far terminal" 5 (Spanning_tree.depth tr leaves.(1));
  Alcotest.(check int) "tree spans the path" 6 (Spanning_tree.size tr)

let test_tree_terminal_leaf_rewrite () =
  (* terminals in a row: 0 - 1 - 2; terminal 1 is internal and must be
     re-attached as a leaf *)
  let g = Graph.path 2 in
  let tr = Spanning_tree.build g ~terminals:[ 0; 1; 2 ] in
  let leaves = Spanning_tree.terminal_leaves tr in
  Array.iteri
    (fun i leaf ->
      if leaf <> Spanning_tree.root tr then
        Alcotest.(check int)
          (Printf.sprintf "terminal %d is a leaf" i)
          0
          (List.length (Spanning_tree.children tr leaf)))
    leaves;
  (* the rewritten leaf is hosted on the same physical vertex *)
  Alcotest.(check bool) "hosts are valid" true
    (Array.for_all
       (fun leaf -> Spanning_tree.host tr leaf < Graph.size g)
       leaves)

let test_tree_depth_bound () =
  for seed = 0 to 3 do
    let st = Random.State.make [| seed; 9 |] in
    let g = Graph.random_connected st ~n:25 ~extra_edges:8 in
    let terminals = [ 0; 7; 13; 24 ] in
    let tr = Spanning_tree.build g ~terminals in
    let r = Graph.radius g in
    Alcotest.(check bool)
      (Printf.sprintf "height %d <= r + 1 = %d" (Spanning_tree.height tr) (r + 1))
      true
      (Spanning_tree.height tr <= r + 1)
  done

let test_tree_paths () =
  let g = Graph.star 4 in
  let tr = Spanning_tree.build g ~terminals:[ 1; 2; 3; 4 ] in
  let leaves = Spanning_tree.terminal_leaves tr in
  let path = Spanning_tree.path_to_root tr leaves.(1) in
  Alcotest.(check int) "path ends at root" (Spanning_tree.root tr)
    (List.nth path (List.length path - 1));
  Alcotest.(check int) "path starts at leaf" leaves.(1) (List.hd path)

let test_tree_rooted_at () =
  let g = Graph.path 4 in
  let tr = Spanning_tree.build_rooted_at g ~terminals:[ 0; 4 ] ~root_terminal:1 in
  let leaves = Spanning_tree.terminal_leaves tr in
  Alcotest.(check int) "root is terminal 1's node" (Spanning_tree.root tr) leaves.(1)

let test_tree_internal_nodes () =
  let g = Graph.path 4 in
  let tr = Spanning_tree.build g ~terminals:[ 0; 4 ] in
  Alcotest.(check int) "three internal nodes" 3
    (List.length (Spanning_tree.internal_nodes tr))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_graph_to_dot () =
  let g = Graph.path 2 in
  let dot = Graph.to_dot ~highlight:[ 0 ] g in
  Alcotest.(check bool) "has edges and highlight" true
    (contains dot "0 -- 1" && contains dot "1 -- 2" && contains dot "fillcolor")

let test_tree_to_dot () =
  let g = Graph.star 3 in
  let tr = Spanning_tree.build g ~terminals:[ 1; 2; 3 ] in
  let dot = Spanning_tree.to_dot tr in
  Alcotest.(check bool) "mentions terminals and edges" true
    (contains dot "terminal 1" && contains dot "->")

(* --- Lemma 18 certificate --- *)

let test_certificate_honest () =
  let st = Random.State.make [| 21 |] in
  let g = Graph.random_connected st ~n:20 ~extra_edges:6 in
  let cert = Spanning_tree.certificate_of g ~root_vertex:5 in
  let verdicts = Spanning_tree.verify_certificate g cert in
  Alcotest.(check bool) "all accept" true (Array.for_all (fun b -> b) verdicts)

let test_certificate_tampered_distance () =
  let st = Random.State.make [| 22 |] in
  let g = Graph.random_connected st ~n:20 ~extra_edges:6 in
  let cert = Spanning_tree.certificate_of g ~root_vertex:0 in
  (* claim some node is closer than it is *)
  let victim =
    let d = cert.Spanning_tree.cert_dist in
    let v = ref 1 in
    Array.iteri (fun i x -> if x > d.(!v) then v := i) d;
    !v
  in
  cert.Spanning_tree.cert_dist.(victim) <- 0;
  let verdicts = Spanning_tree.verify_certificate g cert in
  Alcotest.(check bool) "someone rejects" false
    (Array.for_all (fun b -> b) verdicts)

let test_certificate_fake_root () =
  let g = Graph.path 6 in
  let cert = Spanning_tree.certificate_of g ~root_vertex:0 in
  (* a second node claims to be root *)
  cert.Spanning_tree.cert_parent.(4) <- -1;
  let verdicts = Spanning_tree.verify_certificate g cert in
  Alcotest.(check bool) "fake root caught" false
    (Array.for_all (fun b -> b) verdicts)

let test_certificate_bits () =
  let g = Graph.path 30 in
  Alcotest.(check int) "2 ceil log2 31" 10 (Spanning_tree.certificate_bits g)

(* --- runtime --- *)

let test_runtime_flood () =
  (* node 0 floods a token; after r rounds everyone within distance r
     has it *)
  let g = Graph.path 5 in
  let program =
    {
      Runtime.init = (fun id -> id = 0);
      round =
        (fun ~round:_ ~id:_ has ~inbox ->
          let has' = has || inbox <> [] in
          ((has' : bool), []));
      finish =
        (fun ~id:_ has -> if has then Runtime.Accept else Runtime.Reject);
    }
  in
  (* no messages sent: only node 0 accepts *)
  let verdicts, stats = Runtime.run g ~rounds:1 program in
  Alcotest.(check int) "no traffic" 0 stats.Runtime.messages;
  Alcotest.(check bool) "only source accepts" true
    (verdicts.(0) = Runtime.Accept && verdicts.(1) = Runtime.Reject)

let test_runtime_neighbour_exchange () =
  let g = Graph.cycle 6 in
  let program =
    {
      Runtime.init = (fun id -> (id, 0));
      round =
        (fun ~round ~id (me, seen) ~inbox ->
          match round with
          | 1 ->
              ((me, seen), List.map (fun v -> (v, me)) (Graph.neighbours g id))
          | _ -> ((me, seen + List.length inbox), []));
      finish =
        (fun ~id:_ (_, seen) ->
          if seen = 2 then Runtime.Accept else Runtime.Reject);
    }
  in
  let verdicts, stats = Runtime.run g ~rounds:2 program in
  Alcotest.(check bool) "everyone heard both neighbours" true
    (Runtime.global_verdict verdicts = Runtime.Accept);
  Alcotest.(check int) "12 messages" 12 stats.Runtime.messages;
  Alcotest.(check int) "6 busy edges" 6 (List.length stats.Runtime.per_edge)

let test_runtime_rejects_non_neighbour () =
  let g = Graph.path 3 in
  let program =
    {
      Runtime.init = (fun _ -> ());
      round = (fun ~round:_ ~id (_ : unit) ~inbox:_ -> ((), [ ((id + 2) mod 4, 0) ]));
      finish = (fun ~id:_ () -> Runtime.Accept);
    }
  in
  Alcotest.(check bool) "raises structured error" true
    (try
       ignore (Runtime.run g ~rounds:1 program);
       false
     with Runtime.Protocol_error { node; round; turn; target } ->
       (* the one-shot schedule is prover turn 1 + verifier turn 2 *)
       node >= 0 && round = 1 && turn = 2 && target = (node + 2) mod 4)

let test_estimate_acceptance () =
  let p = Runtime.estimate_acceptance ~st:rng ~trials:500 Random.State.bool in
  Alcotest.(check bool) "coin near half" true (Float.abs (p -. 0.5) < 0.1)

let () =
  Alcotest.run "network"
    [
      ( "graph",
        [
          Alcotest.test_case "path metrics" `Quick test_path_metrics;
          Alcotest.test_case "star metrics" `Quick test_star_metrics;
          Alcotest.test_case "cycle metrics" `Quick test_cycle_metrics;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "metric invariants" `Quick test_metric_invariants;
          Alcotest.test_case "edge validation" `Quick test_add_edge_validation;
        ] );
      ( "spanning_tree",
        [
          Alcotest.test_case "path tree" `Quick test_tree_on_path;
          Alcotest.test_case "terminal-leaf rewrite" `Quick
            test_tree_terminal_leaf_rewrite;
          Alcotest.test_case "depth bound" `Quick test_tree_depth_bound;
          Alcotest.test_case "paths to root" `Quick test_tree_paths;
          Alcotest.test_case "rooted at" `Quick test_tree_rooted_at;
          Alcotest.test_case "internal nodes" `Quick test_tree_internal_nodes;
        ] );
      ( "dot",
        [
          Alcotest.test_case "graph export" `Quick test_graph_to_dot;
          Alcotest.test_case "tree export" `Quick test_tree_to_dot;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "honest accepted" `Quick test_certificate_honest;
          Alcotest.test_case "tampered distance" `Quick
            test_certificate_tampered_distance;
          Alcotest.test_case "fake root" `Quick test_certificate_fake_root;
          Alcotest.test_case "bit accounting" `Quick test_certificate_bits;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "no flood" `Quick test_runtime_flood;
          Alcotest.test_case "neighbour exchange" `Quick
            test_runtime_neighbour_exchange;
          Alcotest.test_case "non-neighbour rejected" `Quick
            test_runtime_rejects_non_neighbour;
          Alcotest.test_case "estimate acceptance" `Quick test_estimate_acceptance;
        ] );
    ]
