(* Tests for the batched linear-operator layer: Batch.gram and
   Batch.apply_into against the per-column reference path, the batched
   Pure kernels against their scalar counterparts, the fused
   symmetric projection against the naive permutation average, the
   quad_minor/quad_major contractions against the boxed quadruple
   loops they replaced, and jobs=1 vs jobs=4 byte-identity of the
   whole Gram-attack pipeline. *)

open Qdp_linalg
open Qdp_quantum
module Exact = Qdp_core.Exact
module States = Qdp_core.States
module Par = Qdp_par

(* jobs=1 vs jobs=4 byte-identity tests must actually take the
   parallel path on small hosts. *)
let () = Par.set_oversubscribe true

let with_jobs n f =
  let old = Par.jobs () in
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs old) f

let random_batch st dim count =
  Batch.init dim count (fun _ _ ->
      Cx.make (States.gaussian st) (States.gaussian st))

let random_real_batch st dim count =
  Batch.init dim count (fun _ _ -> Cx.re (States.gaussian st))

let random_mat st rows cols =
  Mat.init rows cols (fun _ _ ->
      Cx.make (States.gaussian st) (States.gaussian st))

let naive_gram b =
  let n = Batch.count b in
  Mat.init n n (fun i j -> Vec.dot (Batch.col b i) (Batch.col b j))

let mat_close ?(eps = 1e-9) a b =
  let ok = ref (Mat.rows a = Mat.rows b && Mat.cols a = Mat.cols b) in
  if !ok then
    for i = 0 to Mat.rows a - 1 do
      for j = 0 to Mat.cols a - 1 do
        if Cx.abs (Cx.sub (Mat.get a i j) (Mat.get b i j)) > eps then
          ok := false
      done
    done;
  !ok

let mat_identical a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  && Mat.raw_re a = Mat.raw_re b
  && Mat.raw_im a = Mat.raw_im b

(* --- Batch kernels --- *)

let prop_gram_matches_naive =
  QCheck.Test.make ~name:"gram matches per-column Vec.dot" ~count:60
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, dk, nk) ->
      let dim = 1 + (dk mod 40) and n = 1 + (nk mod 10) in
      let st = Random.State.make [| seed; 0xba7c |] in
      let b =
        if seed mod 3 = 0 then random_real_batch st dim n
        else random_batch st dim n
      in
      mat_close (Batch.gram b) (naive_gram b))

let prop_apply_into_matches_apply =
  QCheck.Test.make ~name:"apply_into matches per-column Mat.apply"
    ~count:60
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, dk, nk) ->
      let dim = 1 + (dk mod 24) and n = 1 + (nk mod 8) in
      let rows = 1 + ((seed + dk) mod 24) in
      let st = Random.State.make [| seed; 0xa991 |] in
      let m = random_mat st rows dim in
      let src = random_batch st dim n in
      let dst = Batch.create rows n in
      Batch.apply_into m ~src ~dst;
      let ok = ref true in
      for c = 0 to n - 1 do
        let expect = Mat.apply m (Batch.col src c) in
        let got = Batch.col dst c in
        for g = 0 to rows - 1 do
          if Cx.abs (Cx.sub (Vec.get got g) (Vec.get expect g)) > 1e-12
          then ok := false
        done
      done;
      !ok)

let test_gram_jobs_invariant () =
  (* big enough to cross the parallel cutoff (dim * n^2 >= 2^16) *)
  let st = Random.State.make [| 0x9e1; 7 |] in
  let b = random_batch st 2048 8 in
  let g1 = with_jobs 1 (fun () -> Batch.gram b) in
  let g4 = with_jobs 4 (fun () -> Batch.gram b) in
  Alcotest.(check bool) "jobs=1 and jobs=4 byte-identical" true
    (mat_identical g1 g4);
  Alcotest.(check bool) "parallel gram matches naive" true
    (mat_close g4 (naive_gram b))

(* --- batched Pure kernels vs scalar --- *)

let small_layout = Pure.layout [ ("A", 1); ("B", 2); ("C", 1) ]

let random_pure_batch st lay n =
  let dim = 1 lsl Pure.total_qubits lay in
  Pure.batch_of_global lay (random_batch st dim n)

let columns_match ?(eps = 1e-12) batch scalar_of_col =
  let n = Pure.batch_count batch in
  let ok = ref true in
  for c = 0 to n - 1 do
    let got = Pure.global_vector (Pure.batch_column batch c) in
    let expect = Pure.global_vector (scalar_of_col c) in
    for g = 0 to Vec.dim got - 1 do
      if Cx.abs (Cx.sub (Vec.get got g) (Vec.get expect g)) > eps then
        ok := false
    done
  done;
  !ok

let prop_apply_on_batch =
  QCheck.Test.make ~name:"apply_on_batch matches scalar apply_on"
    ~count:40 QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 0xab5 |] in
      let b = random_pure_batch st small_layout 5 in
      let m = random_mat st 4 4 in
      let out = Pure.apply_on_batch b [ "B" ] m in
      columns_match out (fun c ->
          Pure.apply_on (Pure.batch_column b c) [ "B" ] m))

let prop_controlled_swap_batch =
  QCheck.Test.make ~name:"controlled_swap_batch matches scalar"
    ~count:40 QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 0xc5ab |] in
      let lay = Pure.layout [ ("X", 1); ("Y", 1); ("K", 1) ] in
      let b = random_pure_batch st lay 4 in
      let out = Pure.controlled_swap_batch b ~control:"K" "X" "Y" in
      columns_match out (fun c ->
          Pure.controlled_swap (Pure.batch_column b c) ~control:"K" "X" "Y"))

let prop_permute_batch =
  QCheck.Test.make ~name:"permute_registers_batch matches scalar"
    ~count:40 QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 0x9e2 |] in
      let lay = Pure.layout [ ("P", 1); ("Q", 1); ("R", 1) ] in
      let b = random_pure_batch st lay 4 in
      let names = [| "P"; "Q"; "R" |] in
      let pi = [| 2; 0; 1 |] in
      let out = Pure.permute_registers_batch b names pi in
      columns_match out (fun c ->
          Pure.permute_registers (Pure.batch_column b c) names pi))

(* naive symmetric projection: average the scalar permutation unitary
   over all k! permutations, materializing each term *)
let naive_project_sym s names =
  let arr = Array.of_list names in
  let k = Array.length arr in
  let perms = Symmetric.permutations k in
  let fact = float_of_int (List.length perms) in
  let dim = Pure.dim s in
  let acc = ref (Vec.create dim) in
  List.iter
    (fun pi ->
      acc :=
        Vec.add !acc (Pure.global_vector (Pure.permute_registers s arr pi)))
    perms;
  Vec.scale (Cx.re (1. /. fact)) !acc

let prop_project_sym_fused =
  QCheck.Test.make ~name:"fused project_sym matches naive average"
    ~count:40 QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 0x5f1 |] in
      let lay = Pure.layout [ ("U", 1); ("V", 1); ("W", 1) ] in
      let dim = 1 lsl Pure.total_qubits lay in
      let s = Pure.of_global lay (States.random_unit st dim) in
      let names = [ "U"; "V"; "W" ] in
      let fused = Pure.global_vector (Pure.project_sym s names) in
      let naive = naive_project_sym s names in
      let ok = ref true in
      for g = 0 to dim - 1 do
        if Cx.abs (Cx.sub (Vec.get fused g) (Vec.get naive g)) > 1e-9 then
          ok := false
      done;
      !ok)

let prop_project_sym_batch =
  QCheck.Test.make ~name:"project_sym_batch matches scalar" ~count:40
    QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 0x33d |] in
      let lay = Pure.layout [ ("U", 1); ("V", 1); ("T", 2) ] in
      let b = random_pure_batch st lay 4 in
      let out = Pure.project_sym_batch b [ "U"; "V" ] in
      columns_match out (fun c ->
          Pure.project_sym (Pure.batch_column b c) [ "U"; "V" ]))

(* --- quad contractions vs the boxed quadruple loops --- *)

let naive_quad_minor g v =
  let sub = Vec.dim v in
  let n = Mat.rows g / sub in
  Mat.init n n (fun i i' ->
      let acc = ref Cx.zero in
      for j = 0 to sub - 1 do
        for j' = 0 to sub - 1 do
          acc :=
            Cx.add !acc
              (Cx.mul
                 (Cx.mul (Cx.conj (Vec.get v j))
                    (Mat.get g ((i * sub) + j) ((i' * sub) + j')))
                 (Vec.get v j'))
        done
      done;
      !acc)

let naive_quad_major g u =
  let n = Vec.dim u in
  let sub = Mat.rows g / n in
  Mat.init sub sub (fun j j' ->
      let acc = ref Cx.zero in
      for i = 0 to n - 1 do
        for i' = 0 to n - 1 do
          acc :=
            Cx.add !acc
              (Cx.mul
                 (Cx.mul (Cx.conj (Vec.get u i))
                    (Mat.get g ((i * sub) + j) ((i' * sub) + j')))
                 (Vec.get u i'))
        done
      done;
      !acc)

let prop_quad_contractions =
  QCheck.Test.make ~name:"quad_minor/quad_major match naive nests"
    ~count:40
    QCheck.(pair small_nat small_nat)
    (fun (seed, k) ->
      let n = 2 + (k mod 3) and sub = 2 + ((k / 3) mod 3) in
      let st = Random.State.make [| seed; 0x40ad |] in
      let g = random_mat st (n * sub) (n * sub) in
      let v = States.random_unit st sub in
      let u = States.random_unit st n in
      mat_close (Mat.quad_minor g v) (naive_quad_minor g v)
      && mat_close (Mat.quad_major g u) (naive_quad_major g u))

(* --- the Exact Gram-attack pipeline --- *)

let naive_attack_gram cfg ~x_state ~y_state =
  let pdim = 1 lsl Exact.proof_qubits cfg in
  let outs =
    Array.init pdim (fun i ->
        Pure.global_vector
          (Exact.final_state cfg ~x_state ~y_state ~proof:(Vec.basis pdim i)))
  in
  Mat.init pdim pdim (fun i j -> Vec.dot outs.(i) outs.(j))

let top_eigenvalue g =
  let evals, _ = Eig.hermitian g in
  evals.(Mat.rows g - 1)

let test_exact_gram_matches_naive () =
  List.iter
    (fun (r, qubits) ->
      let cfg = { Exact.r; qubits } in
      let x_state = Exact.toy_state ~qubits 1 in
      let y_state = Exact.toy_state ~qubits 2 in
      let batched = Exact.attack_gram cfg ~x_state ~y_state in
      let naive = naive_attack_gram cfg ~x_state ~y_state in
      Alcotest.(check bool)
        (Printf.sprintf "gram r=%d qubits=%d" r qubits)
        true
        (mat_close batched naive);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "top eigenvalue r=%d qubits=%d" r qubits)
        (top_eigenvalue naive) (top_eigenvalue batched))
    [ (2, 1); (3, 1); (2, 2) ]

let test_exact_gram_jobs_invariant () =
  let cfg = { Exact.r = 3; qubits = 1 } in
  let x_state = Exact.toy_state ~qubits:1 1 in
  let y_state = Exact.toy_state ~qubits:1 2 in
  let g1 = with_jobs 1 (fun () -> Exact.attack_gram cfg ~x_state ~y_state) in
  let g4 = with_jobs 4 (fun () -> Exact.attack_gram cfg ~x_state ~y_state) in
  Alcotest.(check bool) "attack gram byte-identical across jobs" true
    (mat_identical g1 g4)

let test_star_gram_matches_naive () =
  let cfg = { Exact.t = 3; star_qubits = 1 } in
  let root_state = Exact.toy_state ~qubits:1 1 in
  let leaf_states = Array.init 2 (fun i -> Exact.toy_state ~qubits:1 (1 + i)) in
  let pdim = 1 lsl (2 * cfg.star_qubits) in
  let outs =
    Array.init pdim (fun i ->
        Pure.global_vector
          (Exact.star_final_state cfg ~root_state ~leaf_states
             ~proof:(Vec.basis pdim i)))
  in
  let naive = Mat.init pdim pdim (fun i j -> Vec.dot outs.(i) outs.(j)) in
  let batched = Exact.star_attack_gram cfg ~root_state ~leaf_states in
  Alcotest.(check bool) "star gram matches naive" true
    (mat_close batched naive)

(* --- error reporting --- *)

let test_unknown_register_message () =
  let lay = Pure.layout [ ("L", 1); ("R", 1) ] in
  let s = Pure.zero lay in
  Alcotest.check_raises "names the register and the layout"
    (Invalid_argument "Pure: unknown register \"Q\" (layout has \"L\", \"R\")")
    (fun () -> ignore (Pure.apply_on s [ "Q" ] Gates.hadamard))

let () =
  Alcotest.run "batch"
    [
      ( "kernels",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_gram_matches_naive;
            prop_apply_into_matches_apply;
            prop_apply_on_batch;
            prop_controlled_swap_batch;
            prop_permute_batch;
            prop_project_sym_fused;
            prop_project_sym_batch;
            prop_quad_contractions;
          ] );
      ( "determinism",
        [
          Alcotest.test_case "gram jobs-invariant" `Quick
            test_gram_jobs_invariant;
          Alcotest.test_case "attack gram jobs-invariant" `Quick
            test_exact_gram_jobs_invariant;
        ] );
      ( "exact-pipeline",
        [
          Alcotest.test_case "path gram matches naive" `Quick
            test_exact_gram_matches_naive;
          Alcotest.test_case "star gram matches naive" `Quick
            test_star_gram_matches_naive;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown register" `Quick
            test_unknown_register_message;
        ] );
    ]
