(* Tests for the Qdp_obs observability layer: counter/gauge/histogram
   arithmetic, snapshot/reset, span nesting and attribute round-trip
   through the JSON exporters, a Runtime.run smoke test checking the
   emitted counts against the returned stats, and the Report.pp_row
   column clamping. *)

open Qdp_network
module Metrics = Qdp_obs.Metrics
module Trace = Qdp_obs.Trace

let with_obs f = Qdp_obs.with_enabled true f

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- metrics --- *)

let counter_value name =
  match Metrics.find (Metrics.snapshot ()) name with
  | Some (Metrics.Counter_v c) -> c
  | _ -> Alcotest.failf "counter %s missing from snapshot" name

let test_counter () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 0 (counter_value "test.counter");
  with_obs (fun () ->
      Metrics.incr c;
      Metrics.incr ~by:41 c);
  Alcotest.(check int) "counts accumulate" 42 (counter_value "test.counter");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (counter_value "test.counter")

let test_counter_identity () =
  let a = Metrics.counter "test.shared" in
  let b = Metrics.counter "test.shared" in
  Metrics.reset ();
  with_obs (fun () ->
      Metrics.incr a;
      Metrics.incr b);
  Alcotest.(check int) "same name, same counter" 2 (counter_value "test.shared");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Qdp_obs.Metrics: \"test.shared\" already registered with another kind")
    (fun () -> ignore (Metrics.gauge "test.shared"))

let test_gauge () =
  Metrics.reset ();
  let g = Metrics.gauge "test.gauge" in
  with_obs (fun () ->
      Metrics.set g 1.5;
      Metrics.set_max g 0.5;
      Metrics.set_max g 7.25);
  (match Metrics.find (Metrics.snapshot ()) "test.gauge" with
  | Some (Metrics.Gauge_v v) ->
      Alcotest.(check (float 0.)) "set_max keeps the high watermark" 7.25 v
  | _ -> Alcotest.fail "gauge missing")

let hview name =
  match Metrics.find (Metrics.snapshot ()) name with
  | Some (Metrics.Histogram_v h) -> h
  | _ -> Alcotest.failf "histogram %s missing" name

let test_histogram () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  with_obs (fun () -> List.iter (Metrics.observe h) [ 0.5; 2.0; 3.0; 0.0 ]);
  let v = hview "test.hist" in
  Alcotest.(check int) "count" 4 v.Metrics.h_count;
  Alcotest.(check (float 1e-12)) "sum" 5.5 v.Metrics.h_sum;
  Alcotest.(check (float 0.)) "min" 0.0 v.Metrics.h_min;
  Alcotest.(check (float 0.)) "max" 3.0 v.Metrics.h_max;
  (* log-scale buckets, base 2: 0.5 -> exponent -1; 2.0 and 3.0 ->
     exponent 1; the non-positive bucket reports exponent -61 *)
  Alcotest.(check (list (pair int int)))
    "buckets" [ (-61, 1); (-1, 1); (1, 2) ] v.Metrics.h_buckets;
  Metrics.reset ();
  Alcotest.(check int) "reset empties histogram" 0 (hview "test.hist").Metrics.h_count

let test_json_export () =
  Metrics.reset ();
  let c = Metrics.counter "test.json_counter" in
  with_obs (fun () -> Metrics.incr ~by:7 c);
  let json = Metrics.to_json (Metrics.snapshot ()) in
  Alcotest.(check bool) "counter serialized" true
    (contains ~needle:"{\"name\":\"test.json_counter\",\"kind\":\"counter\",\"value\":7}" json);
  let csv = Metrics.to_csv (Metrics.snapshot ()) in
  Alcotest.(check bool) "csv row present" true
    (contains ~needle:"test.json_counter,counter,7" csv)

(* --- spans --- *)

let span_named name =
  match List.find_opt (fun sp -> sp.Trace.name = name) (Trace.spans ()) with
  | Some sp -> sp
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting () =
  Trace.clear ();
  let result =
    with_obs (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner"
              ~attrs:(fun () ->
                [ ("k", Trace.Str "v\"quoted"); ("n", Trace.Int 3) ])
              (fun () -> 21 * 2)))
  in
  Alcotest.(check int) "value passes through" 42 result;
  let outer = span_named "outer" and inner = span_named "inner" in
  Alcotest.(check int) "outer is a root span" (-1) outer.Trace.parent;
  Alcotest.(check int) "inner nests under outer" outer.Trace.id inner.Trace.parent;
  Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
  Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
  Alcotest.(check bool) "durations are non-negative" true
    (outer.Trace.dur_s >= 0. && inner.Trace.dur_s >= inner.Trace.dur_s);
  (* children are recorded (exit) before their parent *)
  let names = List.map (fun sp -> sp.Trace.name) (Trace.spans ()) in
  Alcotest.(check (list string)) "exit order" [ "inner"; "outer" ] names;
  (* attribute round-trip through the JSONL exporter, incl. escaping *)
  let jsonl = Trace.to_jsonl () in
  Alcotest.(check bool) "attrs serialized" true
    (contains ~needle:"\"attrs\":{\"k\":\"v\\\"quoted\",\"n\":3}" jsonl);
  Alcotest.(check bool) "parent id serialized" true
    (contains ~needle:(Printf.sprintf "\"parent\":%d,\"name\":\"inner\"" outer.Trace.id) jsonl)

let test_span_disabled () =
  Trace.clear ();
  let r = Trace.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "disabled span is transparent" 7 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

let test_ring_buffer () =
  Trace.set_capacity 4;
  with_obs (fun () ->
      for i = 1 to 6 do
        Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
      done);
  Alcotest.(check int) "ring keeps the last [capacity] spans" 4
    (List.length (Trace.spans ()));
  Alcotest.(check int) "evictions counted" 2 (Trace.dropped ());
  let names = List.map (fun sp -> sp.Trace.name) (Trace.spans ()) in
  Alcotest.(check (list string)) "oldest evicted first"
    [ "s3"; "s4"; "s5"; "s6" ] names;
  Trace.set_capacity 8192

let test_span_exception () =
  Trace.clear ();
  (try
     with_obs (fun () ->
         Trace.with_span "raising" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let sp = span_named "raising" in
  Alcotest.(check int) "span recorded despite the exception" 0 sp.Trace.depth;
  (* the span stack unwound: a following root span has depth 0 *)
  with_obs (fun () -> Trace.with_span "after" (fun () -> ()));
  Alcotest.(check int) "stack unwound" 0 (span_named "after").Trace.depth

(* --- Runtime.run smoke test --- *)

let flood g =
  {
    Runtime.init = (fun _ -> ());
    round =
      (fun ~round:_ ~id s ~inbox:_ ->
        let out =
          List.filter (fun d -> d >= 0 && d < Graph.size g) [ id - 1; id + 1 ]
        in
        (s, List.map (fun d -> (d, id)) out));
    finish = (fun ~id:_ _ -> Runtime.Accept);
  }

let test_runtime_obs () =
  Metrics.reset ();
  Trace.clear ();
  let g = Graph.path 4 in
  let rounds = 3 in
  let _, stats = with_obs (fun () -> Runtime.run g ~rounds (flood g)) in
  let per_edge_total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 stats.Runtime.per_edge
  in
  Alcotest.(check int) "per_edge sums to messages" stats.Runtime.messages
    per_edge_total;
  Alcotest.(check int) "runtime.messages counter matches stats"
    stats.Runtime.messages
    (counter_value "runtime.messages");
  Alcotest.(check int) "one run counted" 1 (counter_value "runtime.runs");
  let round_spans =
    List.filter (fun sp -> sp.Trace.name = "runtime.round") (Trace.spans ())
  in
  Alcotest.(check int) "one span per round" rounds (List.length round_spans);
  let span_messages =
    List.fold_left
      (fun acc sp ->
        match List.assoc_opt "messages" sp.Trace.attrs with
        | Some (Trace.Int m) -> acc + m
        | _ -> Alcotest.fail "round span lacks a messages attr")
      0 round_spans
  in
  Alcotest.(check int) "per-round span counts sum to stats.messages"
    stats.Runtime.messages span_messages;
  let run_span = span_named "runtime.run" in
  Alcotest.(check bool) "rounds nest under the run span" true
    (List.for_all (fun sp -> sp.Trace.parent = run_span.Trace.id) round_spans)

(* --- Report.pp_row clamping --- *)

let test_report_clamp () =
  let open Qdp_core in
  Alcotest.(check string) "short strings unchanged" "abcde" (Report.clamp 5 "abcde");
  Alcotest.(check string) "long strings truncated" "abc.." (Report.clamp 5 "abcdefgh");
  let row =
    {
      Report.label = "EQ path with a very long protocol label overflowing";
      params = "n=65536 r=1024 k=999999 seed=123456789 extra=true";
      costs = Report.zero;
      completeness = 1.0;
      soundness_error = 3.2e-5;
      paper_formula = "r^2 log n qubits on every intermediate node";
      paper_value = 42.0;
    }
  in
  let rendered = Format.asprintf "%a" Report.pp_row row in
  let line =
    match String.split_on_char '\n' rendered with l :: _ -> l | [] -> ""
  in
  Alcotest.(check bool) "row fits under the header rule" true
    (String.length line <= Report.total_width);
  let header = Format.asprintf "%a" Report.pp_header () in
  let rule =
    List.find (String.for_all (Char.equal '-')) (String.split_on_char '\n' header)
  in
  Alcotest.(check int) "header rule matches the row width" Report.total_width
    (String.length rule);
  Alcotest.(check bool) "params clamped with a marker" true
    (contains ~needle:"n=65536 r=1024 k=99999.." line)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter identity" `Quick test_counter_identity;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "json export" `Quick test_json_export;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting + attrs" `Quick test_span_nesting;
          Alcotest.test_case "disabled" `Quick test_span_disabled;
          Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
        ] );
      ("runtime", [ Alcotest.test_case "run smoke" `Quick test_runtime_obs ]);
      ("report", [ Alcotest.test_case "pp_row clamp" `Quick test_report_clamp ]);
    ]
