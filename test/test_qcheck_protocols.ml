(* Property-based tests over the protocols: invariants that must hold
   for every input, checked by qcheck over randomized instances, plus
   the runtime-tree convergence check. *)

open Qdp_codes
open Qdp_network
open Qdp_core

let distinct_pair st n =
  let x = Gf2.random st n in
  let rec other () =
    let y = Gf2.random st n in
    if Gf2.equal x y then other () else y
  in
  (x, other ())

let prop_eq_path_perfect_completeness =
  QCheck.Test.make ~name:"EQ path: completeness exactly 1" ~count:40
    QCheck.(pair small_nat small_nat)
    (fun (seed, rr) ->
      let n = 8 + (seed mod 40) in
      let r = 1 + (rr mod 9) in
      let st = Random.State.make [| seed; 1 |] in
      let x = Gf2.random st n in
      let p = Eq_path.make ~repetitions:2 ~seed ~n ~r () in
      Eq_path.accept p x (Gf2.copy x) Strategy.Honest >= 1.0 -. 1e-9)

let prop_eq_path_attacks_below_bound =
  QCheck.Test.make ~name:"EQ path: every attack below the Lemma 17 bound"
    ~count:40
    QCheck.(pair small_nat small_nat)
    (fun (seed, rr) ->
      let n = 8 + (seed mod 40) in
      let r = 2 + (rr mod 8) in
      let st = Random.State.make [| seed; 2 |] in
      let x, y = distinct_pair st n in
      let p = Eq_path.make ~repetitions:1 ~seed ~n ~r () in
      let best, _ = Eq_path.best_attack_accept p x y in
      best <= Eq_path.soundness_bound_single ~r +. 1e-9)

let prop_eq_path_accept_is_probability =
  QCheck.Test.make ~name:"EQ path: acceptance in [0, 1]" ~count:40
    QCheck.(triple small_nat small_nat small_nat)
    (fun (seed, rr, cut) ->
      let n = 8 + (seed mod 24) in
      let r = 2 + (rr mod 6) in
      let st = Random.State.make [| seed; 3 |] in
      let x, y = distinct_pair st n in
      let p = Eq_path.make ~repetitions:1 ~seed ~n ~r () in
      let v = Eq_path.single_round_accept p x y (Strategy.Switch (cut mod r)) in
      v >= -1e-12 && v <= 1. +. 1e-12)

let prop_gt_completeness =
  QCheck.Test.make ~name:"GT: completeness exactly 1 on yes instances" ~count:40
    QCheck.(pair small_nat small_nat)
    (fun (seed, rr) ->
      let n = 6 + (seed mod 20) in
      let r = 1 + (rr mod 6) in
      let st = Random.State.make [| seed; 4 |] in
      let a = Gf2.random st n and b = Gf2.random st n in
      match Gf2.compare_big_endian a b with
      | 0 -> true
      | c ->
          let x, y = if c > 0 then (a, b) else (b, a) in
          let p = Gt.make ~repetitions:2 ~seed ~n ~r () in
          Gt.accept p x y (Gt.honest_prover x y) >= 1.0 -. 1e-9)

let prop_gt_no_witness_no_acceptance =
  QCheck.Test.make ~name:"GT: x <= y admits no index passing both ends"
    ~count:40 QCheck.small_nat
    (fun seed ->
      let n = 6 + (seed mod 14) in
      let st = Random.State.make [| seed; 5 |] in
      let a = Gf2.random st n and b = Gf2.random st n in
      let x, y =
        if Gf2.compare_big_endian a b <= 0 then (a, b) else (b, a)
      in
      (* on a no instance every committed index either fails an end
         check or runs EQ on unequal prefixes: acceptance < 1 *)
      let p = Gt.make ~repetitions:1 ~seed ~n ~r:3 () in
      let best, _ = Gt.best_attack_accept p x y in
      best < 1.0 -. 1e-9)

let prop_dqcma_completeness =
  QCheck.Test.make ~name:"dQCMA: completeness exactly 1" ~count:30
    QCheck.(pair small_nat small_nat)
    (fun (seed, rr) ->
      let n = 8 + (seed mod 24) in
      let r = 2 + (rr mod 6) in
      let st = Random.State.make [| seed; 6 |] in
      let x = Gf2.random st n in
      let p = Variants.make ~repetitions:3 ~seed ~n ~r () in
      Variants.accept p x (Gf2.copy x) Variants.Honest_strings >= 1.0 -. 1e-9)

let prop_relay_completeness =
  QCheck.Test.make ~name:"relay: completeness exactly 1" ~count:20
    QCheck.(pair small_nat small_nat)
    (fun (seed, rr) ->
      let n = 8 + (seed mod 24) in
      let r = 4 + (rr mod 12) in
      let st = Random.State.make [| seed; 7 |] in
      let x = Gf2.random st n in
      let p = Relay.make ~inner_repetitions:2 ~seed ~n ~r () in
      Relay.accept p x (Gf2.copy x) (Relay.honest_prover p x) >= 1.0 -. 1e-9)

let prop_tree_completeness_random_graphs =
  QCheck.Test.make ~name:"EQ tree: completeness 1 on random graphs" ~count:20
    QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 8 |] in
      let nodes = 8 + (seed mod 12) in
      let g = Graph.random_connected st ~n:nodes ~extra_edges:(seed mod 5) in
      let t = 2 + (seed mod 3) in
      let terminals =
        List.sort_uniq compare (List.init t (fun i -> i * (nodes - 1) / t))
      in
      if List.length terminals < 2 then true
      else begin
        let n = 12 in
        let x = Gf2.random st n in
        let inputs = Array.make (List.length terminals) (Gf2.copy x) in
        let p = Eq_tree.make ~repetitions:1 ~seed ~n ~r:nodes () in
        Eq_tree.accept p g ~terminals ~inputs Eq_tree.Honest >= 1.0 -. 1e-9
      end)

let prop_rv_honest_iff_true =
  QCheck.Test.make ~name:"RV: honest acceptance is 1 iff the rank is true"
    ~count:30 QCheck.small_nat
    (fun seed ->
      
      let t = 3 + (seed mod 3) in
      let g = Graph.star t in
      let terminals = List.init t (fun i -> i + 1) in
      let n = 8 in
      (* distinct inputs so ranks are unambiguous *)
      let perm = Array.init t (fun i -> (i * 7919) mod 251 mod (1 lsl n)) in
      let inputs = Array.map (Gf2.of_int ~width:n) perm in
      let p = Rv.make ~repetitions:1 ~seed ~n ~r:2 () in
      let i = seed mod t and j = 1 + (seed mod t) in
      let truth = Rv.rv_value ~inputs ~i ~j in
      let acc = Rv.honest_accept p g ~terminals ~inputs ~i ~j in
      if truth then acc >= 1.0 -. 1e-9 else acc = 0.0)

let prop_swap_accept_range =
  QCheck.Test.make ~name:"SWAP acceptance always in [1/2, 1]" ~count:60
    QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 10 |] in
      let gaussian () =
        let u1 = Float.max 1e-12 (Random.State.float st 1.) in
        let u2 = Random.State.float st 1. in
        Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
      in
      let v n =
        Qdp_linalg.Vec.normalize
          (Qdp_linalg.Vec.init n (fun _ -> Qdp_linalg.Cx.re (gaussian ())))
      in
      let d = 2 + (seed mod 14) in
      let p = Sim.swap_accept [| v d |] [| v d |] in
      p >= 0.5 -. 1e-9 && p <= 1. +. 1e-9)

(* --- runtime-tree convergence --- *)

let test_runtime_tree_honest () =
  let g = Graph.star 4 in
  let terminals = [ 1; 2; 3; 4 ] in
  let n = 16 in
  let st = Random.State.make [| 0x5a |] in
  let x = Gf2.random st n in
  let inputs = Array.make 4 (Gf2.copy x) in
  let p = Eq_tree.make ~repetitions:1 ~seed:11 ~n ~r:2 () in
  let ok, stats = Runtime_tree.run_once st p g ~terminals ~inputs Eq_tree.Honest in
  Alcotest.(check bool) "honest run accepts" true ok;
  Alcotest.(check bool) "messages flowed" true (stats.Runtime.messages > 0)

let test_runtime_tree_converges () =
  let g = Graph.star 3 in
  let terminals = [ 1; 2; 3 ] in
  let n = 16 in
  let st = Random.State.make [| 0x5b |] in
  let x, y = distinct_pair st n in
  let inputs = [| Gf2.copy x; Gf2.copy x; y |] in
  let p = Eq_tree.make ~repetitions:1 ~seed:12 ~n ~r:2 () in
  let closed =
    Eq_tree.single_round_accept p g ~terminals ~inputs (Eq_tree.Constant x)
  in
  let sampled =
    Runtime_tree.estimate_acceptance st ~trials:4000 p g ~terminals ~inputs
      (Eq_tree.Constant x)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %.3f vs closed %.3f" sampled closed)
    true
    (Float.abs (sampled -. closed) < 0.04)

let test_runtime_tree_fgnp_variant () =
  let g = Graph.star 4 in
  let terminals = [ 1; 2; 3; 4 ] in
  let n = 16 in
  let st = Random.State.make [| 0x5c |] in
  let x, y = distinct_pair st n in
  let inputs = [| Gf2.copy x; Gf2.copy x; Gf2.copy x; y |] in
  let p =
    Eq_tree.make ~repetitions:1 ~use_permutation_test:false ~seed:13 ~n ~r:2 ()
  in
  let closed =
    Eq_tree.single_round_accept p g ~terminals ~inputs (Eq_tree.Constant x)
  in
  let sampled =
    Runtime_tree.estimate_acceptance st ~trials:4000 p g ~terminals ~inputs
      (Eq_tree.Constant x)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fgnp sampled %.3f vs closed %.3f" sampled closed)
    true
    (Float.abs (sampled -. closed) < 0.04)

let () =
  Alcotest.run "qcheck_protocols"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_eq_path_perfect_completeness;
            prop_eq_path_attacks_below_bound;
            prop_eq_path_accept_is_probability;
            prop_gt_completeness;
            prop_gt_no_witness_no_acceptance;
            prop_dqcma_completeness;
            prop_relay_completeness;
            prop_tree_completeness_random_graphs;
            prop_rv_honest_iff_true;
            prop_swap_accept_range;
          ] );
      ( "runtime_tree",
        [
          Alcotest.test_case "honest run" `Quick test_runtime_tree_honest;
          Alcotest.test_case "converges to closed form" `Quick
            test_runtime_tree_converges;
          Alcotest.test_case "FGNP21 variant converges" `Quick
            test_runtime_tree_fgnp_variant;
        ] );
    ]
