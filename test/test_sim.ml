(* Differential tests for the acceptance engines: the transfer-matrix
   path DP and tree DP against brute-force coin enumeration, and the
   product-proof engine against the exact state-vector simulator. *)

open Qdp_linalg
open Qdp_commcc
open Qdp_core

let rng = Random.State.make [| 0x51b |]

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let gaussian st =
  let u1 = Float.max 1e-12 (Random.State.float st 1.) in
  let u2 = Random.State.float st 1. in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let random_real_unit st n =
  Vec.normalize (Vec.init n (fun _ -> Cx.re (gaussian st)))

(* Brute force: enumerate all coin vectors, multiply conditional test
   probabilities. *)
let brute_force_path (inst : Sim.path_instance) =
  let r = inst.Sim.length in
  if r = 1 then inst.Sim.left_accept *. inst.Sim.final_accept inst.Sim.left_send
  else begin
    let total = ref 0. in
    let ncoins = r - 1 in
    for coins = 0 to (1 lsl ncoins) - 1 do
      let coin j = (coins lsr (j - 1)) land 1 in
      let kept j =
        let a, b = inst.Sim.pairs.(j - 1) in
        if coin j = 0 then a else b
      in
      let sent j =
        let a, b = inst.Sim.pairs.(j - 1) in
        if coin j = 0 then b else a
      in
      let p = ref inst.Sim.left_accept in
      for j = 1 to r - 1 do
        let arriving = if j = 1 then inst.Sim.left_send else sent (j - 1) in
        p := !p *. Sim.swap_accept arriving (kept j)
      done;
      p := !p *. inst.Sim.final_accept (sent (r - 1));
      total := !total +. !p
    done;
    !total /. float_of_int (1 lsl ncoins)
  end

let random_instance st r dim =
  let reg () = [| random_real_unit st dim |] in
  let target = random_real_unit st dim in
  {
    Sim.length = r;
    left_accept = 0.5 +. Random.State.float st 0.5;
    left_send = reg ();
    pairs = Array.init (r - 1) (fun _ -> (reg (), reg ()));
    final_accept = (fun reg -> Cx.norm2 (Vec.dot target reg.(0)));
  }

let test_path_dp_vs_brute_force () =
  for r = 1 to 8 do
    for trial = 0 to 2 do
      let st = Random.State.make [| r; trial; 0xd1ff |] in
      let inst = random_instance st r 4 in
      check_float ~eps:1e-10
        (Printf.sprintf "r=%d trial=%d" r trial)
        (brute_force_path inst) (Sim.path_accept inst)
    done
  done

let test_path_honest_accepts () =
  let s = random_real_unit rng 8 in
  let inst =
    Sim.two_state_chain ~r:5 ~left:s ~right:s
      ~final:(fun reg -> Cx.norm2 (Vec.dot s reg.(0)))
      Strategy.All_left
  in
  check_float ~eps:1e-12 "honest chain accepts" 1. (Sim.path_accept inst)

let test_swap_accept_bundles () =
  let a = random_real_unit rng 4 and b = random_real_unit rng 4 in
  let c = random_real_unit rng 4 and d = random_real_unit rng 4 in
  (* joint swap on a 2-register bundle: overlap is the product *)
  let ov = Cx.mul (Vec.dot a c) (Vec.dot b d) in
  check_float ~eps:1e-10 "bundle swap accept"
    ((1. +. Cx.norm2 ov) /. 2.)
    (Sim.swap_accept [| a; b |] [| c; d |])

let test_perm_accept_two_is_swap () =
  let a = random_real_unit rng 4 and b = random_real_unit rng 4 in
  check_float ~eps:1e-10 "k=2 permutation = swap"
    (Sim.swap_accept [| a |] [| b |])
    (Sim.perm_accept [ [| a |]; [| b |] ])

let test_perm_accept_identical () =
  let a = random_real_unit rng 4 in
  check_float ~eps:1e-10 "identical registers accept" 1.
    (Sim.perm_accept [ [| a |]; [| a |]; [| a |] ])

(* --- tree DP vs brute force on small trees --- *)

let brute_force_tree st (inst : Sim.tree_instance) =
  (* enumerate all coins of internal nodes *)
  ignore st;
  let tr = inst.Sim.tree in
  let module T = Qdp_network.Spanning_tree in
  let internal =
    List.filter
      (fun v -> T.terminal_of tr v = None)
      (List.init (T.size tr) (fun v -> v))
  in
  let n_int = List.length internal in
  let idx_of v =
    let rec go i = function
      | [] -> raise Not_found
      | w :: ws -> if w = v then i else go (i + 1) ws
    in
    go 0 internal
  in
  let total = ref 0. in
  for coins = 0 to (1 lsl n_int) - 1 do
    let coin v = (coins lsr idx_of v) land 1 in
    let sent v =
      if T.terminal_of tr v <> None then inst.Sim.leaf_state v
      else begin
        let a, b = inst.Sim.internal_pair v in
        if coin v = 0 then b else a
      end
    in
    let kept v =
      let a, b = inst.Sim.internal_pair v in
      if coin v = 0 then a else b
    in
    let p = ref 1. in
    for v = 0 to T.size tr - 1 do
      let children = T.children tr v in
      if children <> [] then begin
        let sents = List.map sent children in
        let own =
          if v = T.root tr then inst.Sim.root_state else kept v
        in
        let test =
          if inst.Sim.use_permutation_test then Sim.perm_accept (own :: sents)
          else
            (* FGNP21 variant: SWAP test against a uniformly random
               child, averaged analytically *)
            List.fold_left (fun acc s -> acc +. Sim.swap_accept own s) 0. sents
            /. float_of_int (List.length sents)
        in
        p := !p *. test
      end
    done;
    total := !total +. !p
  done;
  !total /. float_of_int (1 lsl n_int)

let test_tree_dp_vs_brute_force () =
  let module T = Qdp_network.Spanning_tree in
  let g = Qdp_network.Graph.balanced_tree ~arity:2 ~depth:2 in
  (* terminals: root and the four depth-2 leaves: 3, 4, 5, 6 *)
  let tr = T.build_rooted_at g ~terminals:[ 0; 3; 4; 5; 6 ] ~root_terminal:0 in
  for trial = 0 to 2 do
    let st = Random.State.make [| trial; 0x7ee |] in
    let states = Array.init (T.size tr) (fun _ -> [| random_real_unit st 4 |]) in
    let pair_states =
      Array.init (T.size tr) (fun _ ->
          ([| random_real_unit st 4 |], [| random_real_unit st 4 |]))
    in
    let inst =
      {
        Sim.tree = tr;
        root_state = [| random_real_unit st 4 |];
        leaf_state = (fun v -> states.(v));
        internal_pair = (fun v -> pair_states.(v));
        use_permutation_test = true;
      }
    in
    let st2 = Random.State.make [| trial |] in
    check_float ~eps:1e-10
      (Printf.sprintf "tree trial %d" trial)
      (brute_force_tree st2 inst)
      (Sim.tree_accept st2 inst)
  done

let test_tree_dp_vs_brute_force_random_graphs () =
  let module T = Qdp_network.Spanning_tree in
  for seed = 0 to 4 do
    let st = Random.State.make [| seed; 0x9a3 |] in
    let g = Qdp_network.Graph.random_connected st ~n:10 ~extra_edges:(seed mod 4) in
    let terminals = [ 0; 3; 6; 9 ] in
    let tr = T.build g ~terminals in
    let states = Array.init (T.size tr) (fun _ -> [| random_real_unit st 4 |]) in
    let pair_states =
      Array.init (T.size tr) (fun _ ->
          ([| random_real_unit st 4 |], [| random_real_unit st 4 |]))
    in
    let inst =
      {
        Sim.tree = tr;
        root_state = [| random_real_unit st 4 |];
        leaf_state = (fun v -> states.(v));
        internal_pair = (fun v -> pair_states.(v));
        use_permutation_test = seed mod 2 = 0;
      }
    in
    let st2 = Random.State.make [| seed |] in
    check_float ~eps:1e-10
      (Printf.sprintf "random graph seed %d" seed)
      (brute_force_tree st2 inst)
      (Sim.tree_accept st2 inst)
  done

(* --- exact state-vector simulator agreement --- *)

let test_exact_matches_sim_product_proofs () =
  let cfg = { Exact.r = 4; qubits = 1 } in
  for trial = 0 to 4 do
    let st = Random.State.make [| trial; 0xe5a |] in
    let x_state = random_real_unit st 2 in
    let y_state = random_real_unit st 2 in
    (* arbitrary product proof with distinct pair halves *)
    let pairs =
      Array.init 3 (fun _ -> (random_real_unit st 2, random_real_unit st 2))
    in
    let exact =
      Exact.accept_prob cfg ~x_state ~y_state
        ~proof:(Exact.product_proof cfg pairs)
    in
    let sim =
      Sim.path_accept
        {
          Sim.length = 4;
          left_accept = 1.0;
          left_send = [| x_state |];
          pairs = Array.map (fun (a, b) -> ([| a |], [| b |])) pairs;
          final_accept = (fun reg -> Cx.norm2 (Vec.dot y_state reg.(0)));
        }
    in
    check_float ~eps:1e-9 (Printf.sprintf "trial %d" trial) exact sim
  done

let test_exact_honest_complete () =
  let cfg = { Exact.r = 5; qubits = 1 } in
  let s = Exact.toy_state ~qubits:1 4 in
  check_float ~eps:1e-9 "honest proof accepted" 1.
    (Exact.accept_prob cfg ~x_state:s ~y_state:s ~proof:(Exact.honest_proof cfg s))

let test_entangled_beats_or_matches_product () =
  let cfg = { Exact.r = 3; qubits = 1 } in
  let x_state = Exact.toy_state ~qubits:1 1 in
  let y_state = Exact.toy_state ~qubits:1 2 in
  let product = Exact.best_product_attack cfg ~x_state ~y_state in
  let entangled, opt_proof = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
  Alcotest.(check bool) "optimal >= best product" true
    (entangled >= product -. 1e-9);
  (* the optimal proof achieves its eigenvalue *)
  let achieved =
    Exact.accept_prob cfg ~x_state ~y_state ~proof:(Vec.normalize opt_proof)
  in
  check_float ~eps:1e-7 "eigenvector achieves eigenvalue" entangled achieved

let test_entangled_attack_below_soundness_bound () =
  (* the exact optimum must respect Lemma 17's bound *)
  for k = 0 to 2 do
    let cfg = { Exact.r = 3 + k; qubits = 1 } in
    let x_state = Exact.toy_state ~qubits:1 5 in
    let y_state = Exact.toy_state ~qubits:1 11 in
    let entangled, _ = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
    let bound = Eq_path.soundness_bound_single ~r:cfg.Exact.r in
    Alcotest.(check bool)
      (Printf.sprintf "r=%d: %.6f <= %.6f" cfg.Exact.r entangled bound)
      true
      (entangled <= bound +. 1e-9)
  done

(* --- down-tree engine --- *)

let test_down_tree_honest () =
  let module T = Qdp_network.Spanning_tree in
  let g = Qdp_network.Graph.path 3 in
  let tr = T.build_rooted_at g ~terminals:[ 0; 3 ] ~root_terminal:0 in
  let msg = [| random_real_unit rng 4 |] in
  let inst =
    {
      Sim.dtree = tr;
      root_message = msg;
      internal_registers =
        (fun v ->
          let delta = List.length (T.children tr v) in
          Array.make (delta + 1) msg);
      leaf_accept = (fun _ recv -> Cx.norm2 (Oneway.bundle_overlap recv msg));
    }
  in
  check_float ~eps:1e-10 "honest down-tree accepts" 1.
    (Sim.down_tree_accept inst)

let test_down_tree_vs_path () =
  (* on a path, the down-tree engine with per-node registers must agree
     with a direct coin enumeration; check a cheating prover *)
  let module T = Qdp_network.Spanning_tree in
  let g = Qdp_network.Graph.path 2 in
  let tr = T.build_rooted_at g ~terminals:[ 0; 2 ] ~root_terminal:0 in
  let st = Random.State.make [| 0xdd |] in
  let msg = [| random_real_unit st 4 |] in
  let bad = [| random_real_unit st 4 |] in
  let target = random_real_unit st 4 in
  let inst =
    {
      Sim.dtree = tr;
      root_message = msg;
      internal_registers = (fun _ -> [| msg; bad |]);
      leaf_accept = (fun _ recv -> Cx.norm2 (Vec.dot target recv.(0)));
    }
  in
  (* one internal node with 1 child: permutations of 2 registers: keep
     one, forward the other; SWAP test kept vs received-from-root *)
  let swap_with r = Sim.swap_accept r msg in
  let bob r = Cx.norm2 (Vec.dot target r.(0)) in
  let expected =
    0.5 *. ((swap_with [| msg; bad |].(1) *. bob msg)
           +. (swap_with msg *. bob bad))
  in
  check_float ~eps:1e-10 "matches manual enumeration" expected
    (Sim.down_tree_accept inst)

let test_repeat_accept () =
  check_float ~eps:1e-12 "p^k" 0.25 (Sim.repeat_accept 2 0.5);
  check_float ~eps:1e-12 "k=0" 1. (Sim.repeat_accept 0 0.3)

let () =
  Alcotest.run "sim"
    [
      ( "path",
        [
          Alcotest.test_case "DP vs brute force" `Quick test_path_dp_vs_brute_force;
          Alcotest.test_case "honest accepts" `Quick test_path_honest_accepts;
          Alcotest.test_case "bundle swap accept" `Quick test_swap_accept_bundles;
          Alcotest.test_case "perm k=2 = swap" `Quick test_perm_accept_two_is_swap;
          Alcotest.test_case "perm identical" `Quick test_perm_accept_identical;
        ] );
      ( "tree",
        [
          Alcotest.test_case "DP vs brute force" `Quick test_tree_dp_vs_brute_force;
          Alcotest.test_case "DP vs brute force (random graphs)" `Quick
            test_tree_dp_vs_brute_force_random_graphs;
        ] );
      ( "exact",
        [
          Alcotest.test_case "matches product engine" `Quick
            test_exact_matches_sim_product_proofs;
          Alcotest.test_case "honest complete" `Quick test_exact_honest_complete;
          Alcotest.test_case "entangled optimum" `Quick
            test_entangled_beats_or_matches_product;
          Alcotest.test_case "respects Lemma 17" `Quick
            test_entangled_attack_below_soundness_bound;
        ] );
      ( "down_tree",
        [
          Alcotest.test_case "honest accepts" `Quick test_down_tree_honest;
          Alcotest.test_case "manual enumeration" `Quick test_down_tree_vs_path;
          Alcotest.test_case "repeat" `Quick test_repeat_accept;
        ] );
    ]
